//! The constraint AST: the paper's general form (1) and NOT NULL
//! constraints (Definition 5).
//!
//! A form-(1) integrity constraint is
//!
//! ```text
//! ∀x̄ ( ⋀ᵢ₌₁..m Pᵢ(x̄ᵢ)  →  ∃z̄ ( ⋁ⱼ₌₁..n Qⱼ(ȳⱼ, z̄ⱼ) ∨ ϕ ) )
//! ```
//!
//! with `ȳⱼ ⊆ x̄`, `x̄ ∩ z̄ = ∅`, `z̄ᵢ ∩ z̄ⱼ = ∅` for `i ≠ j`, `m ≥ 1`, and ϕ a
//! disjunction of builtin comparison atoms over body variables. Constants
//! other than `null` may replace variables anywhere.

use crate::error::ConstraintError;
use crate::relevant::RelevantAttrs;
use cqa_relational::{RelId, Schema, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Variable identifier, dense within one [`Ic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl VarId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A term of a constraint atom: variable or (non-null) constant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A variable, resolved against the owning constraint's table.
    Var(VarId),
    /// A constant of the domain (never `null`; validation enforces this).
    Const(Value),
}

impl Term {
    /// The variable id, if this term is a variable.
    pub fn as_var(&self) -> Option<VarId> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }
}

/// A database-predicate atom `R(t₁, …, t_k)` inside a constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IcAtom {
    /// The relation.
    pub rel: RelId,
    /// Terms, one per attribute.
    pub terms: Vec<Term>,
}

impl IcAtom {
    /// Variables occurring in this atom (with repetitions collapsed).
    pub fn vars(&self) -> BTreeSet<VarId> {
        self.terms.iter().filter_map(Term::as_var).collect()
    }
}

/// Comparison operators of the builtin predicate set `B`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `≠`
    Neq,
    /// `<`
    Lt,
    /// `≤`
    Leq,
    /// `>`
    Gt,
    /// `≥`
    Geq,
}

impl CmpOp {
    /// Evaluate the comparison on two values, treating `null` as an
    /// ordinary constant (Definition 4's classical evaluation). The total
    /// order on [`Value`] (`Null < Int < Str`) backs the inequalities.
    pub fn eval(self, lhs: &Value, rhs: &Value) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Neq => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Leq => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Geq => lhs >= rhs,
        }
    }

    /// The complementary operator (used to negate ϕ when generating repair
    /// programs: `ϕ̄` is the conjunction of complements).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Neq,
            CmpOp::Neq => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Geq,
            CmpOp::Leq => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Leq,
            CmpOp::Geq => CmpOp::Lt,
        }
    }

    /// Symbol for pretty printing.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Neq => "!=",
            CmpOp::Lt => "<",
            CmpOp::Leq => "<=",
            CmpOp::Gt => ">",
            CmpOp::Geq => ">=",
        }
    }
}

/// A builtin comparison atom, one disjunct of ϕ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Builtin {
    /// Comparison operator.
    pub op: CmpOp,
    /// Left term.
    pub lhs: Term,
    /// Right term.
    pub rhs: Term,
}

/// A validated form-(1) integrity constraint.
///
/// Built through [`Ic::builder`]; construction computes and caches the
/// classification-relevant metadata: universal/existential variable sets
/// and the relevant attributes `A(ψ)` of Definition 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ic {
    name: String,
    var_names: Vec<String>,
    body: Vec<IcAtom>,
    head: Vec<IcAtom>,
    builtins: Vec<Builtin>,
    universal: BTreeSet<VarId>,
    existential: BTreeSet<VarId>,
    relevant: RelevantAttrs,
}

impl Ic {
    /// Start building a constraint against `schema`.
    pub fn builder(schema: &Schema, name: impl Into<String>) -> IcBuilder<'_> {
        IcBuilder::new(schema, name)
    }

    /// Constraint name (used in diagnostics and program generation).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The antecedent atoms `Pᵢ(x̄ᵢ)`.
    pub fn body(&self) -> &[IcAtom] {
        &self.body
    }

    /// The consequent atoms `Qⱼ(ȳⱼ, z̄ⱼ)` (may be empty: denials, checks).
    pub fn head(&self) -> &[IcAtom] {
        &self.head
    }

    /// The disjuncts of ϕ (may be empty; an empty ϕ with an empty head is
    /// the always-false consequent of a denial constraint).
    pub fn builtins(&self) -> &[Builtin] {
        &self.builtins
    }

    /// Universally quantified variables `x̄` (= all body variables).
    pub fn universal_vars(&self) -> &BTreeSet<VarId> {
        &self.universal
    }

    /// Existentially quantified variables `z̄` (head variables not in the
    /// body).
    pub fn existential_vars(&self) -> &BTreeSet<VarId> {
        &self.existential
    }

    /// Is this variable existential?
    pub fn is_existential(&self, v: VarId) -> bool {
        self.existential.contains(&v)
    }

    /// The relevant attributes `A(ψ)` (Definition 2) plus derived views.
    pub fn relevant(&self) -> &RelevantAttrs {
        &self.relevant
    }

    /// Name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.var_names[v.index()]
    }

    /// Number of variables.
    pub fn var_count(&self) -> usize {
        self.var_names.len()
    }

    /// Every relation mentioned by the constraint (body and head).
    pub fn relations(&self) -> BTreeSet<RelId> {
        self.body
            .iter()
            .chain(self.head.iter())
            .map(|a| a.rel)
            .collect()
    }

    /// Render with relation names from `schema`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> IcDisplay<'a> {
        IcDisplay { ic: self, schema }
    }
}

/// Pretty printer for a constraint, e.g.
/// `P(x, y) -> exists z: Q(x, z) | y > 3`.
pub struct IcDisplay<'a> {
    ic: &'a Ic,
    schema: &'a Schema,
}

impl fmt::Display for IcDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ic = self.ic;
        let term = |t: &Term| -> String {
            match t {
                Term::Var(v) => ic.var_name(*v).to_string(),
                Term::Const(c) => match c {
                    Value::Sym(s) => format!("'{s}'"),
                    other => other.to_string(),
                },
            }
        };
        let atom = |a: &IcAtom| -> String {
            let args: Vec<String> = a.terms.iter().map(term).collect();
            format!(
                "{}({})",
                self.schema.relation(a.rel).name(),
                args.join(", ")
            )
        };
        let body: Vec<String> = ic.body.iter().map(&atom).collect();
        write!(f, "{}", body.join(", "))?;
        write!(f, " -> ")?;
        if !ic.existential.is_empty() {
            let ex: Vec<&str> = ic.existential.iter().map(|v| ic.var_name(*v)).collect();
            write!(f, "exists {}: ", ex.join(", "))?;
        }
        let mut parts: Vec<String> = ic.head.iter().map(&atom).collect();
        for b in &ic.builtins {
            parts.push(format!(
                "{} {} {}",
                term(&b.lhs),
                b.op.symbol(),
                term(&b.rhs)
            ));
        }
        if parts.is_empty() {
            write!(f, "false")
        } else {
            write!(f, "{}", parts.join(" | "))
        }
    }
}

/// A NOT NULL constraint (Definition 5):
/// `∀x̄ (P(x̄) ∧ IsNull(xᵢ) → false)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nnc {
    /// Constraint name.
    pub name: String,
    /// The constrained relation.
    pub rel: RelId,
    /// 0-based attribute position that must not be null.
    pub position: usize,
}

impl Nnc {
    /// Build a NOT NULL constraint, validating the position.
    pub fn new(
        schema: &Schema,
        name: impl Into<String>,
        relation: &str,
        position: usize,
    ) -> Result<Self, ConstraintError> {
        let rel = schema
            .rel_id(relation)
            .ok_or_else(|| ConstraintError::UnknownRelation(relation.to_string()))?;
        let arity = schema.relation(rel).arity();
        if position >= arity {
            return Err(ConstraintError::NncPositionOutOfRange {
                relation: relation.to_string(),
                position,
                arity,
            });
        }
        Ok(Nnc {
            name: name.into(),
            rel,
            position,
        })
    }
}

/// A constraint of either syntactic class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Constraint {
    /// A form-(1) constraint.
    Tgd(Ic),
    /// A NOT NULL constraint.
    NotNull(Nnc),
}

impl Constraint {
    /// Constraint name.
    pub fn name(&self) -> &str {
        match self {
            Constraint::Tgd(ic) => ic.name(),
            Constraint::NotNull(n) => &n.name,
        }
    }

    /// The inner [`Ic`], if this is a form-(1) constraint.
    pub fn as_ic(&self) -> Option<&Ic> {
        match self {
            Constraint::Tgd(ic) => Some(ic),
            Constraint::NotNull(_) => None,
        }
    }

    /// The inner [`Nnc`], if this is a NOT NULL constraint.
    pub fn as_nnc(&self) -> Option<&Nnc> {
        match self {
            Constraint::NotNull(n) => Some(n),
            Constraint::Tgd(_) => None,
        }
    }
}

impl From<Ic> for Constraint {
    fn from(ic: Ic) -> Self {
        Constraint::Tgd(ic)
    }
}

impl From<Nnc> for Constraint {
    fn from(n: Nnc) -> Self {
        Constraint::NotNull(n)
    }
}

/// A fixed finite set `IC` of constraints, the unit the repair and program
/// layers operate on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IcSet {
    constraints: Vec<Constraint>,
}

impl IcSet {
    /// Build from any mix of [`Ic`] and [`Nnc`] values.
    pub fn new(constraints: impl IntoIterator<Item = Constraint>) -> Self {
        IcSet {
            constraints: constraints.into_iter().collect(),
        }
    }

    /// All constraints, in declaration order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The form-(1) constraints with their indices.
    pub fn ics(&self) -> impl Iterator<Item = (usize, &Ic)> {
        self.constraints
            .iter()
            .enumerate()
            .filter_map(|(i, con)| con.as_ic().map(|ic| (i, ic)))
    }

    /// The NOT NULL constraints with their indices.
    pub fn nncs(&self) -> impl Iterator<Item = (usize, &Nnc)> {
        self.constraints
            .iter()
            .enumerate()
            .filter_map(|(i, con)| con.as_nnc().map(|n| (i, n)))
    }

    /// Add a constraint.
    pub fn push(&mut self, c: impl Into<Constraint>) {
        self.constraints.push(c.into());
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// `true` iff there are no constraints.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Constants occurring in the constraints, `const(IC)` of
    /// Proposition 1.
    pub fn constants(&self) -> BTreeSet<Value> {
        let mut out = BTreeSet::new();
        for (_, ic) in self.ics() {
            for atom in ic.body().iter().chain(ic.head()) {
                for t in &atom.terms {
                    if let Term::Const(c) = t {
                        out.insert(*c);
                    }
                }
            }
            for b in ic.builtins() {
                for t in [&b.lhs, &b.rhs] {
                    if let Term::Const(c) = t {
                        out.insert(*c);
                    }
                }
            }
        }
        out
    }

    /// Pairs `(tgd-index, nnc-index)` where the NOT NULL constraint guards
    /// an attribute that is existentially quantified in the form-(1)
    /// constraint — the *conflicting* interactions of Example 20. Sets with
    /// no such pairs are *non-conflicting* (the paper's standing
    /// assumption).
    pub fn conflicting_pairs(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (i, ic) in self.ics() {
            for atom in ic.head() {
                for (pos, term) in atom.terms.iter().enumerate() {
                    let is_ex = term.as_var().map(|v| ic.is_existential(v)).unwrap_or(false);
                    if !is_ex {
                        continue;
                    }
                    for (j, nnc) in self.nncs() {
                        if nnc.rel == atom.rel && nnc.position == pos {
                            out.push((i, j));
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// `true` iff no NOT NULL constraint clashes with an existential
    /// position.
    pub fn is_non_conflicting(&self) -> bool {
        self.conflicting_pairs().is_empty()
    }
}

impl FromIterator<Constraint> for IcSet {
    fn from_iter<T: IntoIterator<Item = Constraint>>(iter: T) -> Self {
        IcSet::new(iter)
    }
}

/// A term spec used by builders before variable resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TermSpec {
    /// A named variable.
    Var(String),
    /// A constant.
    Const(Value),
}

/// Shorthand for a named variable term.
pub fn v(name: impl Into<String>) -> TermSpec {
    TermSpec::Var(name.into())
}

/// Shorthand for a constant term.
pub fn c(value: impl Into<Value>) -> TermSpec {
    TermSpec::Const(value.into())
}

/// Builder for [`Ic`]. Variables are identified by name; ids are assigned
/// in first-occurrence order.
pub struct IcBuilder<'s> {
    schema: &'s Schema,
    name: String,
    var_ids: BTreeMap<String, VarId>,
    var_names: Vec<String>,
    body: Vec<IcAtom>,
    head: Vec<IcAtom>,
    builtins: Vec<Builtin>,
    error: Option<ConstraintError>,
}

impl<'s> IcBuilder<'s> {
    fn new(schema: &'s Schema, name: impl Into<String>) -> Self {
        IcBuilder {
            schema,
            name: name.into(),
            var_ids: BTreeMap::new(),
            var_names: Vec::new(),
            body: Vec::new(),
            head: Vec::new(),
            builtins: Vec::new(),
            error: None,
        }
    }

    fn resolve_term(&mut self, spec: TermSpec) -> Result<Term, ConstraintError> {
        match spec {
            TermSpec::Var(name) => {
                let next = VarId(self.var_names.len() as u32);
                let id = *self.var_ids.entry(name.clone()).or_insert_with(|| {
                    self.var_names.push(name);
                    next
                });
                Ok(Term::Var(id))
            }
            TermSpec::Const(val) => {
                if val.is_null() {
                    Err(ConstraintError::NullConstant(self.name.clone()))
                } else {
                    Ok(Term::Const(val))
                }
            }
        }
    }

    fn resolve_atom(
        &mut self,
        relation: &str,
        terms: Vec<TermSpec>,
    ) -> Result<IcAtom, ConstraintError> {
        let rel = self
            .schema
            .rel_id(relation)
            .ok_or_else(|| ConstraintError::UnknownRelation(relation.to_string()))?;
        let arity = self.schema.relation(rel).arity();
        if terms.len() != arity {
            return Err(ConstraintError::ArityMismatch {
                ic: self.name.clone(),
                relation: relation.to_string(),
                expected: arity,
                actual: terms.len(),
            });
        }
        let terms = terms
            .into_iter()
            .map(|t| self.resolve_term(t))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(IcAtom { rel, terms })
    }

    /// Add an antecedent atom `Pᵢ(…)`.
    pub fn body_atom(mut self, relation: &str, terms: impl IntoIterator<Item = TermSpec>) -> Self {
        if self.error.is_some() {
            return self;
        }
        match self.resolve_atom(relation, terms.into_iter().collect()) {
            Ok(a) => self.body.push(a),
            Err(e) => self.error = Some(e),
        }
        self
    }

    /// Add a consequent atom `Qⱼ(…)`.
    pub fn head_atom(mut self, relation: &str, terms: impl IntoIterator<Item = TermSpec>) -> Self {
        if self.error.is_some() {
            return self;
        }
        match self.resolve_atom(relation, terms.into_iter().collect()) {
            Ok(a) => self.head.push(a),
            Err(e) => self.error = Some(e),
        }
        self
    }

    /// Add a disjunct of ϕ.
    pub fn builtin(mut self, lhs: TermSpec, op: CmpOp, rhs: TermSpec) -> Self {
        if self.error.is_some() {
            return self;
        }
        let resolved = self
            .resolve_term(lhs)
            .and_then(|l| self.resolve_term(rhs).map(|r| (l, r)));
        match resolved {
            Ok((lhs, rhs)) => self.builtins.push(Builtin { op, lhs, rhs }),
            Err(e) => self.error = Some(e),
        }
        self
    }

    /// Validate and finish the constraint.
    pub fn finish(self) -> Result<Ic, ConstraintError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if self.body.is_empty() {
            return Err(ConstraintError::EmptyBody(self.name));
        }
        let universal: BTreeSet<VarId> = self.body.iter().flat_map(|a| a.vars()).collect();
        // z̄ᵢ ∩ z̄ⱼ = ∅: an existential variable may occur in only one head
        // atom (repetitions inside that atom are allowed, cf. Example 13).
        let mut seen_in: BTreeMap<VarId, usize> = BTreeMap::new();
        let mut existential = BTreeSet::new();
        for (j, atom) in self.head.iter().enumerate() {
            for var in atom.vars() {
                if universal.contains(&var) {
                    continue;
                }
                existential.insert(var);
                if let Some(&owner) = seen_in.get(&var) {
                    if owner != j {
                        return Err(ConstraintError::SharedExistential {
                            ic: self.name,
                            var: self.var_names[var.index()].clone(),
                        });
                    }
                } else {
                    seen_in.insert(var, j);
                }
            }
        }
        // ϕ over body variables only.
        for b in &self.builtins {
            for t in [&b.lhs, &b.rhs] {
                if let Some(var) = t.as_var() {
                    if !universal.contains(&var) {
                        return Err(ConstraintError::BuiltinUsesNonBodyVar {
                            ic: self.name,
                            var: self.var_names[var.index()].clone(),
                        });
                    }
                }
            }
        }
        let relevant = RelevantAttrs::compute(
            &self.body,
            &self.head,
            &self.builtins,
            &universal,
            self.var_names.len(),
        );
        Ok(Ic {
            name: self.name,
            var_names: self.var_names,
            body: self.body,
            head: self.head,
            builtins: self.builtins,
            universal,
            existential,
            relevant,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_relational::Schema;

    fn schema() -> Schema {
        Schema::builder()
            .relation("P", ["a", "b", "c"])
            .relation("R", ["x", "y"])
            .relation("S", ["s"])
            .finish()
            .unwrap()
    }

    #[test]
    fn example1_universal_constraint_builds() {
        // ∀xyzw (P(x,y,w) ∧ R(y,z) → S(x) ∨ (z ≠ 2 ∨ w ≤ y))  (adapted arity)
        let s = schema();
        let ic = Ic::builder(&s, "a")
            .body_atom("P", [v("x"), v("y"), v("w")])
            .body_atom("R", [v("y"), v("z")])
            .head_atom("S", [v("x")])
            .builtin(v("z"), CmpOp::Neq, c(2))
            .builtin(v("w"), CmpOp::Leq, v("y"))
            .finish()
            .unwrap();
        assert_eq!(ic.body().len(), 2);
        assert_eq!(ic.head().len(), 1);
        assert_eq!(ic.builtins().len(), 2);
        assert!(ic.existential_vars().is_empty());
        assert_eq!(ic.universal_vars().len(), 4);
    }

    #[test]
    fn example1_referential_constraint_builds() {
        // ∀xy (R(x,y) → ∃z P(x, y, z))
        let s = schema();
        let ic = Ic::builder(&s, "b")
            .body_atom("R", [v("x"), v("y")])
            .head_atom("P", [v("x"), v("y"), v("z")])
            .finish()
            .unwrap();
        assert_eq!(ic.existential_vars().len(), 1);
        assert!(ic.is_existential(VarId(2)));
    }

    #[test]
    fn empty_body_rejected() {
        let s = schema();
        let err = Ic::builder(&s, "bad").head_atom("S", [v("x")]).finish();
        assert!(matches!(err, Err(ConstraintError::EmptyBody(_))));
    }

    #[test]
    fn shared_existential_rejected() {
        // S(x) → ∃y (R(x,y) ∨ P(x,y,y)): y shared between two head atoms.
        let s = schema();
        let err = Ic::builder(&s, "bad")
            .body_atom("S", [v("x")])
            .head_atom("R", [v("x"), v("y")])
            .head_atom("P", [v("x"), v("y"), v("y")])
            .finish();
        assert!(matches!(
            err,
            Err(ConstraintError::SharedExistential { .. })
        ));
    }

    #[test]
    fn repeated_existential_within_one_atom_allowed() {
        // Example 13: P(x,y) → ∃z Q(x,z,z) — adapted to P/R arities.
        let s = schema();
        let ic = Ic::builder(&s, "ex13")
            .body_atom("R", [v("x"), v("y")])
            .head_atom("P", [v("x"), v("z"), v("z")])
            .finish()
            .unwrap();
        assert_eq!(ic.existential_vars().len(), 1);
    }

    #[test]
    fn builtin_over_existential_rejected() {
        let s = schema();
        let err = Ic::builder(&s, "bad")
            .body_atom("S", [v("x")])
            .head_atom("R", [v("x"), v("z")])
            .builtin(v("z"), CmpOp::Gt, c(0))
            .finish();
        assert!(matches!(
            err,
            Err(ConstraintError::BuiltinUsesNonBodyVar { .. })
        ));
    }

    #[test]
    fn null_constant_rejected() {
        let s = schema();
        let err = Ic::builder(&s, "bad")
            .body_atom("S", [c(Value::Null)])
            .finish();
        assert!(matches!(err, Err(ConstraintError::NullConstant(_))));
    }

    #[test]
    fn unknown_relation_and_arity_mismatch() {
        let s = schema();
        assert!(matches!(
            Ic::builder(&s, "bad").body_atom("Z", [v("x")]).finish(),
            Err(ConstraintError::UnknownRelation(_))
        ));
        assert!(matches!(
            Ic::builder(&s, "bad")
                .body_atom("S", [v("x"), v("y")])
                .finish(),
            Err(ConstraintError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn nnc_validation() {
        let s = schema();
        assert!(Nnc::new(&s, "n1", "R", 1).is_ok());
        assert!(matches!(
            Nnc::new(&s, "n2", "R", 2),
            Err(ConstraintError::NncPositionOutOfRange { .. })
        ));
        assert!(matches!(
            Nnc::new(&s, "n3", "Z", 0),
            Err(ConstraintError::UnknownRelation(_))
        ));
    }

    #[test]
    fn cmp_eval_and_negate() {
        use cqa_relational::{i, null};
        assert!(CmpOp::Eq.eval(&null(), &null())); // null as ordinary constant
        assert!(CmpOp::Lt.eval(&i(1), &i(2)));
        assert!(CmpOp::Lt.eval(&null(), &i(0))); // Null < Int in the total order
        for op in [
            CmpOp::Eq,
            CmpOp::Neq,
            CmpOp::Lt,
            CmpOp::Leq,
            CmpOp::Gt,
            CmpOp::Geq,
        ] {
            // negation complements on every pair drawn from a small set
            for a in [i(1), i(2), null()] {
                for b in [i(1), i(2), null()] {
                    assert_ne!(op.eval(&a, &b), op.negate().eval(&a, &b));
                }
            }
        }
    }

    #[test]
    fn conflicting_pairs_example20() {
        // RIC ∀x (S(x) → ∃y R(x,y)) with NNC on R[2] (position 1) conflicts.
        let s = schema();
        let ric = Ic::builder(&s, "ric")
            .body_atom("S", [v("x")])
            .head_atom("R", [v("x"), v("y")])
            .finish()
            .unwrap();
        let nnc = Nnc::new(&s, "nnc", "R", 1).unwrap();
        let set = IcSet::new([Constraint::from(ric.clone()), Constraint::from(nnc)]);
        assert_eq!(set.conflicting_pairs(), vec![(0, 1)]);
        assert!(!set.is_non_conflicting());

        // NNC on the referencing (universal) position does not conflict.
        let nnc_ok = Nnc::new(&s, "nnc", "R", 0).unwrap();
        let set_ok = IcSet::new([Constraint::from(ric), Constraint::from(nnc_ok)]);
        assert!(set_ok.is_non_conflicting());
    }

    #[test]
    fn constants_collected() {
        let s = schema();
        let ic = Ic::builder(&s, "k")
            .body_atom("R", [v("x"), c(3)])
            .builtin(v("x"), CmpOp::Gt, c(10))
            .finish()
            .unwrap();
        let set = IcSet::new([Constraint::from(ic)]);
        let consts = set.constants();
        assert!(consts.contains(&Value::Int(3)));
        assert!(consts.contains(&Value::Int(10)));
        assert_eq!(consts.len(), 2);
    }

    #[test]
    fn display_renders_paper_like_syntax() {
        let s = schema();
        let ic = Ic::builder(&s, "d")
            .body_atom("R", [v("x"), v("y")])
            .head_atom("P", [v("x"), v("y"), v("z")])
            .builtin(v("y"), CmpOp::Gt, c(3))
            .finish()
            .unwrap();
        assert_eq!(
            ic.display(&s).to_string(),
            "R(x, y) -> exists z: P(x, y, z) | y > 3"
        );
        let denial = Ic::builder(&s, "den")
            .body_atom("S", [v("x")])
            .finish()
            .unwrap();
        assert_eq!(denial.display(&s).to_string(), "S(x) -> false");
    }
}
