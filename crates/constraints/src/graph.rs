//! Dependency graphs over constraint sets: `G(IC)`, the contracted graph
//! `G^C(IC)`, RIC-acyclicity (Definition 1), and the bilateral-predicate
//! condition of Theorem 5 (Definition 11).

use crate::ast::{Constraint, IcSet};
use crate::classify::{classify, IcClass};
use cqa_relational::{RelId, Schema};
use std::collections::{BTreeMap, BTreeSet};

/// A directed edge of `G(IC)`: from an antecedent predicate to a consequent
/// predicate, labelled with the index of the constraint inducing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    /// Antecedent predicate.
    pub from: RelId,
    /// Consequent predicate.
    pub to: RelId,
    /// Index into the [`IcSet`].
    pub ic_index: usize,
}

/// The dependency graph `G(IC)`: database predicates as vertices, an edge
/// `(Pᵢ, Pⱼ)` whenever some constraint has `Pᵢ` in its antecedent and `Pⱼ`
/// in its consequent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DependencyGraph {
    /// Every predicate mentioned by the constraint set.
    pub vertices: BTreeSet<RelId>,
    /// All labelled edges.
    pub edges: BTreeSet<Edge>,
}

impl DependencyGraph {
    /// Render in Graphviz DOT syntax (deterministic output).
    pub fn to_dot(&self, schema: &Schema, ics: &IcSet) -> String {
        let mut out = String::from("digraph G {\n");
        for v in &self.vertices {
            out.push_str(&format!("  {};\n", schema.relation(*v).name()));
        }
        for e in &self.edges {
            out.push_str(&format!(
                "  {} -> {} [label=\"{}\"];\n",
                schema.relation(e.from).name(),
                schema.relation(e.to).name(),
                ics.constraints()[e.ic_index].name()
            ));
        }
        out.push_str("}\n");
        out
    }
}

/// Build `G(IC)` for a constraint set (NOT NULL constraints contribute
/// their predicate as an isolated vertex; they induce no edges).
pub fn dependency_graph(ics: &IcSet) -> DependencyGraph {
    let mut vertices = BTreeSet::new();
    let mut edges = BTreeSet::new();
    for (index, con) in ics.constraints().iter().enumerate() {
        match con {
            Constraint::Tgd(ic) => {
                for b in ic.body() {
                    vertices.insert(b.rel);
                    for h in ic.head() {
                        vertices.insert(h.rel);
                        edges.insert(Edge {
                            from: b.rel,
                            to: h.rel,
                            ic_index: index,
                        });
                    }
                }
                for h in ic.head() {
                    vertices.insert(h.rel);
                }
            }
            Constraint::NotNull(nnc) => {
                vertices.insert(nnc.rel);
            }
        }
    }
    DependencyGraph { vertices, edges }
}

/// The contracted dependency graph `G^C(IC)` of Definition 1: the
/// connected components of `G(IC_U)` (the UIC-induced subgraph, taken with
/// undirected connectivity) are merged into single vertices, UIC edges are
/// deleted, and the remaining (referential/existential) edges connect
/// components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContractedGraph {
    /// The vertex groups: each is a set of predicates collapsed together.
    pub components: Vec<BTreeSet<RelId>>,
    /// Edges between component indices, labelled by constraint index.
    pub edges: BTreeSet<(usize, usize, usize)>,
}

impl ContractedGraph {
    /// Component index of a predicate.
    pub fn component_of(&self, rel: RelId) -> Option<usize> {
        self.components.iter().position(|c| c.contains(&rel))
    }

    /// Does the contracted graph contain a directed cycle (self-loops
    /// count)?
    pub fn has_cycle(&self) -> bool {
        // Kahn's algorithm; leftover vertices indicate a cycle. Self-loops
        // are cycles immediately.
        if self.edges.iter().any(|(a, b, _)| a == b) {
            return true;
        }
        let n = self.components.len();
        let mut indegree = vec![0usize; n];
        let mut adj: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
        for (a, b, _) in &self.edges {
            if adj.entry(*a).or_default().insert(*b) {
                indegree[*b] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&v| indegree[v] == 0).collect();
        let mut seen = 0usize;
        while let Some(v) = queue.pop() {
            seen += 1;
            if let Some(next) = adj.get(&v) {
                for &w in next {
                    indegree[w] -= 1;
                    if indegree[w] == 0 {
                        queue.push(w);
                    }
                }
            }
        }
        seen != n
    }

    /// Render in Graphviz DOT syntax.
    pub fn to_dot(&self, schema: &Schema, ics: &IcSet) -> String {
        let label = |idx: usize| -> String {
            let names: Vec<&str> = self.components[idx]
                .iter()
                .map(|r| schema.relation(*r).name())
                .collect();
            format!("\"{{{}}}\"", names.join(","))
        };
        let mut out = String::from("digraph GC {\n");
        for i in 0..self.components.len() {
            out.push_str(&format!("  {};\n", label(i)));
        }
        for (a, b, ic) in &self.edges {
            out.push_str(&format!(
                "  {} -> {} [label=\"{}\"];\n",
                label(*a),
                label(*b),
                ics.constraints()[*ic].name()
            ));
        }
        out.push_str("}\n");
        out
    }
}

/// Build `G^C(IC)`.
pub fn contracted_dependency_graph(ics: &IcSet) -> ContractedGraph {
    let g = dependency_graph(ics);
    // Union-find over the UIC edges (undirected connectivity).
    let verts: Vec<RelId> = g.vertices.iter().copied().collect();
    let index_of: BTreeMap<RelId, usize> = verts.iter().enumerate().map(|(i, r)| (*r, i)).collect();
    let mut parent: Vec<usize> = (0..verts.len()).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    for e in &g.edges {
        let universal = ics.constraints()[e.ic_index]
            .as_ic()
            .map(|ic| classify(ic) == IcClass::Universal)
            .unwrap_or(false);
        if universal {
            let (a, b) = (index_of[&e.from], index_of[&e.to]);
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[ra] = rb;
            }
        }
    }
    let mut groups: BTreeMap<usize, BTreeSet<RelId>> = BTreeMap::new();
    for (i, rel) in verts.iter().enumerate() {
        groups.entry(find(&mut parent, i)).or_default().insert(*rel);
    }
    let components: Vec<BTreeSet<RelId>> = groups.into_values().collect();
    let comp_of: BTreeMap<RelId, usize> = components
        .iter()
        .enumerate()
        .flat_map(|(i, c)| c.iter().map(move |r| (*r, i)))
        .collect();
    let mut edges = BTreeSet::new();
    for e in &g.edges {
        let universal = ics.constraints()[e.ic_index]
            .as_ic()
            .map(|ic| classify(ic) == IcClass::Universal)
            .unwrap_or(false);
        if !universal {
            edges.insert((comp_of[&e.from], comp_of[&e.to], e.ic_index));
        }
    }
    ContractedGraph { components, edges }
}

/// Is the constraint set RIC-acyclic (Definition 1)? Pure-UIC sets always
/// are; Theorem 4's stable-model/repair correspondence requires this.
pub fn is_ric_acyclic(ics: &IcSet) -> bool {
    !contracted_dependency_graph(ics).has_cycle()
}

/// The bilateral predicates of Definition 11: predicates occurring in the
/// antecedent of some constraint and in the consequent of some (possibly
/// the same) constraint.
pub fn bilateral_predicates(ics: &IcSet) -> BTreeSet<RelId> {
    let mut in_body = BTreeSet::new();
    let mut in_head = BTreeSet::new();
    for (_, ic) in ics.ics() {
        for a in ic.body() {
            in_body.insert(a.rel);
        }
        for a in ic.head() {
            in_head.insert(a.rel);
        }
    }
    in_body.intersection(&in_head).copied().collect()
}

/// The sufficient HCF condition of Theorem 5: every constraint has either
/// no occurrence of a bilateral predicate, or exactly one (counting
/// repetitions across body and head).
pub fn theorem5_hcf_condition(ics: &IcSet) -> bool {
    let bilateral = bilateral_predicates(ics);
    for (_, ic) in ics.ics() {
        let occurrences = ic
            .body()
            .iter()
            .chain(ic.head())
            .filter(|a| bilateral.contains(&a.rel))
            .count();
        if occurrences > 1 {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{v, Constraint, Ic};
    use cqa_relational::Schema;

    fn schema() -> Schema {
        Schema::builder()
            .relation("S", ["s"])
            .relation("Q", ["q"])
            .relation("R", ["r"])
            .relation("T", ["x", "y"])
            .finish()
            .unwrap()
    }

    /// The constraint set of Example 2: ic1: S(x)→Q(x), ic2: Q(x)→R(x),
    /// ic3: Q(x)→∃y T(x,y).
    fn example2(sc: &Schema) -> IcSet {
        let ic1 = Ic::builder(sc, "ic1")
            .body_atom("S", [v("x")])
            .head_atom("Q", [v("x")])
            .finish()
            .unwrap();
        let ic2 = Ic::builder(sc, "ic2")
            .body_atom("Q", [v("x")])
            .head_atom("R", [v("x")])
            .finish()
            .unwrap();
        let ic3 = Ic::builder(sc, "ic3")
            .body_atom("Q", [v("x")])
            .head_atom("T", [v("x"), v("y")])
            .finish()
            .unwrap();
        IcSet::new([
            Constraint::from(ic1),
            Constraint::from(ic2),
            Constraint::from(ic3),
        ])
    }

    #[test]
    fn example2_dependency_graph() {
        let sc = schema();
        let ics = example2(&sc);
        let g = dependency_graph(&ics);
        assert_eq!(g.vertices.len(), 4);
        assert_eq!(g.edges.len(), 3);
        let dot = g.to_dot(&sc, &ics);
        assert!(dot.contains("S -> Q"));
        assert!(dot.contains("Q -> R"));
        assert!(dot.contains("Q -> T"));
    }

    #[test]
    fn example3_contraction_and_acyclicity() {
        let sc = schema();
        let ics = example2(&sc);
        let gc = contracted_dependency_graph(&ics);
        // {S,Q,R} collapse; T stands alone; one RIC edge between them.
        assert_eq!(gc.components.len(), 2);
        assert_eq!(gc.edges.len(), 1);
        assert!(!gc.has_cycle());
        assert!(is_ric_acyclic(&ics));
    }

    #[test]
    fn example3_adding_uic_creates_ric_cycle() {
        // Adding T(x,y) → R(y) merges everything into one component, and
        // the RIC edge becomes a self-loop: not RIC-acyclic.
        let sc = schema();
        let mut ics = example2(&sc);
        let ic4 = Ic::builder(&sc, "ic4")
            .body_atom("T", [v("x"), v("y")])
            .head_atom("R", [v("y")])
            .finish()
            .unwrap();
        ics.push(ic4);
        let gc = contracted_dependency_graph(&ics);
        assert_eq!(gc.components.len(), 1);
        assert!(gc.has_cycle());
        assert!(!is_ric_acyclic(&ics));
        let dot = gc.to_dot(&sc, &ics);
        assert!(dot.contains("ic3"));
    }

    #[test]
    fn pure_uic_sets_are_ric_acyclic() {
        // Even mutually recursive UICs: S(x)→Q(x), Q(x)→S(x).
        let sc = schema();
        let a = Ic::builder(&sc, "a")
            .body_atom("S", [v("x")])
            .head_atom("Q", [v("x")])
            .finish()
            .unwrap();
        let b = Ic::builder(&sc, "b")
            .body_atom("Q", [v("x")])
            .head_atom("S", [v("x")])
            .finish()
            .unwrap();
        let ics = IcSet::new([Constraint::from(a), Constraint::from(b)]);
        assert!(is_ric_acyclic(&ics));
    }

    #[test]
    fn example18_cyclic_ric_set_detected() {
        // P(x,y) → T(x) (UIC), T(x) → ∃y P(y,x) (RIC): contracted graph has
        // a self-loop on the merged {P, T} component.
        let sc = Schema::builder()
            .relation("P", ["a", "b"])
            .relation("T", ["t"])
            .finish()
            .unwrap();
        let uic = Ic::builder(&sc, "uic")
            .body_atom("P", [v("x"), v("y")])
            .head_atom("T", [v("x")])
            .finish()
            .unwrap();
        let ric = Ic::builder(&sc, "ric")
            .body_atom("T", [v("x")])
            .head_atom("P", [v("y"), v("x")])
            .finish()
            .unwrap();
        let ics = IcSet::new([Constraint::from(uic), Constraint::from(ric)]);
        assert!(!is_ric_acyclic(&ics));
    }

    #[test]
    fn example24_bilateral_predicates() {
        // IC = {T(x) → ∃y R(x,y), S(x,y) → T(x)}: only T is bilateral.
        let sc = Schema::builder()
            .relation("T", ["t"])
            .relation("R", ["a", "b"])
            .relation("S", ["u", "v"])
            .finish()
            .unwrap();
        let ric = Ic::builder(&sc, "r")
            .body_atom("T", [v("x")])
            .head_atom("R", [v("x"), v("y")])
            .finish()
            .unwrap();
        let uic = Ic::builder(&sc, "u")
            .body_atom("S", [v("x"), v("y")])
            .head_atom("T", [v("x")])
            .finish()
            .unwrap();
        let ics = IcSet::new([Constraint::from(ric), Constraint::from(uic)]);
        let bil = bilateral_predicates(&ics);
        assert_eq!(bil.len(), 1);
        assert!(bil.contains(&sc.rel_id("T").unwrap()));
        assert!(theorem5_hcf_condition(&ics));
    }

    #[test]
    fn theorem5_rejects_double_bilateral_occurrence() {
        // P(x,y) → P(y,x): P bilateral with two occurrences in one IC.
        let sc = Schema::builder()
            .relation("P", ["a", "b"])
            .finish()
            .unwrap();
        let ic = Ic::builder(&sc, "sym")
            .body_atom("P", [v("x"), v("y")])
            .head_atom("P", [v("y"), v("x")])
            .finish()
            .unwrap();
        let ics = IcSet::new([Constraint::from(ic)]);
        assert!(!theorem5_hcf_condition(&ics));
    }

    #[test]
    fn denial_only_sets_have_no_bilateral_predicates() {
        // Corollary 1's precondition.
        let sc = schema();
        let d1 = Ic::builder(&sc, "d1")
            .body_atom("S", [v("x")])
            .body_atom("Q", [v("x")])
            .finish()
            .unwrap();
        let ics = IcSet::new([Constraint::from(d1)]);
        assert!(bilateral_predicates(&ics).is_empty());
        assert!(theorem5_hcf_condition(&ics));
    }
}
