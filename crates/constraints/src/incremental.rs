//! Index-driven and *incremental* violation finding.
//!
//! The naive evaluator in [`crate::satisfaction`] joins constraint bodies
//! by nested full-relation scans and re-checks the whole instance after
//! every change. This module replaces both hot loops:
//!
//! * **Index-driven joins.** Body matching probes the secondary hash
//!   indexes of [`cqa_relational::index`] instead of scanning: at every
//!   join depth, the candidate set for an atom is the bucket of its
//!   determined columns (constants and already-bound join variables) — one
//!   determined column probes its [`ColumnIndex`], several probe the
//!   *composite* index of the exact column set ([`CompositeIndex`]), so a
//!   multi-attribute FD/key/IC probe is a single packed-key lookup with no
//!   residual filtering on determined positions. Buckets are
//!   `BTreeSet<Tuple>`, so swapping a scan for a probe never changes match
//!   enumeration order — the indexed full check ([`violations`]) reports
//!   exactly the naive order, which the property suite pins down. With
//!   interned values ([`cqa_relational::symbol`]), every probe hashes and
//!   compares integers, independent of string content.
//! * **Seeded (delta) matching.** [`violations_touching`] re-checks only
//!   the ground instantiations that can involve a changed atom: inserted
//!   tuples are pinned into each compatible body position, removed tuples
//!   are inverted through the head atoms they may have witnessed. After a
//!   pinned seed, the remaining body atoms are joined
//!   *most-selective-first*: repeatedly pick the atom with the most
//!   determined columns (tie-break: smaller relation, then body order).
//!   This is the paper's tractability observation made operational —
//!   repairs differ from `D` only on the Proposition-1 universe, so search
//!   steps touch few atoms and re-checking cost should scale with the
//!   change, not the instance.
//!
//! Completeness of the delta rule (single- or multi-atom [`Delta`], against
//! the *post-change* instance): a ground body assignment `σ` violated in
//! `D′` but not in `D` either gained a body atom (some inserted atom occurs
//! in `σ`'s body match — found by pinning that atom) or lost its last head
//! witness (every witness was removed; any one of them seeds the inverted
//! head match that rediscovers `σ`). IsNull escapes and builtin disjuncts
//! depend only on `σ` itself and never flip. NOT NULL violations can only
//! be created by insertions, which are checked directly.

use crate::ast::{Constraint, Ic, IcAtom, IcSet, Term, VarId};
use crate::satisfaction::{phi_escape, SatMode, Violation, ViolationKind};
use cqa_relational::{
    ColsKey, ColumnIndex, CompositeIndex, DatabaseAtom, Delta, Instance, Tuple, Value,
};
use std::collections::BTreeMap;
use std::ops::ControlFlow;
use std::sync::Arc;

// The incremental-checking state must be cheap to fork and safe to move
// across threads: the parallel repair search hands each worker its own
// instance fork and ships worklists of [`Violation`]s between workers as
// work-stealing task payloads. [`Candidates`] holds `Arc` index snapshots
// (fork = refcount bump) and interned `Copy` values, so both properties
// are structural; these witnesses turn any accidental `!Send` (an `Rc`, a
// raw pointer) into a compile error.
const _: () = {
    use cqa_relational::testing::{assert_send, assert_sync};
    assert_send::<Candidates>();
    assert_sync::<Candidates>();
    assert_send::<Violation>();
    assert_sync::<Violation>();
    assert_send::<IcSet>();
    assert_sync::<IcSet>();
};

/// How to enumerate candidate tuples for one atom under current bindings.
enum Candidates {
    /// No column is determined: scan the whole relation.
    Scan,
    /// One determined column: probe its hash index.
    Probe(Arc<ColumnIndex>, Value),
    /// Several determined columns: probe the composite index of the
    /// exact column set — no residual filtering on determined positions.
    ProbeCols(Arc<CompositeIndex>, ColsKey),
}

impl Candidates {
    fn for_atom(
        instance: &Instance,
        atom: &IcAtom,
        bindings: &[Option<Value>],
        checked: impl Fn(usize) -> bool,
    ) -> Candidates {
        // Determined columns (a constant or an already-bound variable),
        // collected in ascending position order — the canonical order of
        // a composite index.
        let mut cols: Vec<usize> = Vec::with_capacity(atom.terms.len());
        let mut values: Vec<Value> = Vec::with_capacity(atom.terms.len());
        for (pos, term) in atom.terms.iter().enumerate() {
            if !checked(pos) {
                continue;
            }
            let value = match term {
                Term::Const(c) => *c,
                Term::Var(v) => match bindings[v.index()] {
                    Some(bound) => bound,
                    None => continue,
                },
            };
            cols.push(pos);
            values.push(value);
        }
        match cols.len() {
            0 => Candidates::Scan,
            1 => Candidates::Probe(instance.index_on(atom.rel, cols[0]), values[0]),
            _ => Candidates::ProbeCols(
                instance.index_on_cols(atom.rel, &cols),
                ColsKey::new(&values),
            ),
        }
    }

    /// Iterate the candidate tuples in deterministic (tuple) order.
    fn for_each<B>(
        &self,
        instance: &Instance,
        atom: &IcAtom,
        mut f: impl FnMut(&Tuple) -> ControlFlow<B>,
    ) -> ControlFlow<B> {
        match self {
            Candidates::Scan => {
                for t in instance.relation(atom.rel) {
                    f(t)?;
                }
            }
            Candidates::Probe(ix, value) => {
                for t in ix.probe(value) {
                    f(t)?;
                }
            }
            Candidates::ProbeCols(ix, key) => {
                for t in ix.probe(key) {
                    f(t)?;
                }
            }
        }
        ControlFlow::Continue(())
    }
}

/// Try to extend `bindings` with `tuple` matched against `atom`.
/// Returns the newly bound variables, or `None` (bindings restored).
fn try_match(atom: &IcAtom, tuple: &Tuple, bindings: &mut [Option<Value>]) -> Option<Vec<VarId>> {
    let mut newly: Vec<VarId> = Vec::new();
    for (pos, term) in atom.terms.iter().enumerate() {
        let val = tuple.get(pos);
        let ok = match term {
            Term::Const(c) => val == c,
            Term::Var(v) => match &bindings[v.index()] {
                Some(bound) => bound == val,
                None => {
                    bindings[v.index()] = Some(*val);
                    newly.push(*v);
                    true
                }
            },
        };
        if !ok {
            for v in &newly {
                bindings[v.index()] = None;
            }
            return None;
        }
    }
    Some(newly)
}

fn unbind(bindings: &mut [Option<Value>], vars: &[VarId]) {
    for v in vars {
        bindings[v.index()] = None;
    }
}

/// Number of determined columns of a body atom under current bindings
/// (constants count; so do bound variables).
fn determined_cols(atom: &IcAtom, bindings: &[Option<Value>]) -> usize {
    atom.terms
        .iter()
        .filter(|t| match t {
            Term::Const(_) => true,
            Term::Var(v) => bindings[v.index()].is_some(),
        })
        .count()
}

/// A body-join pass over one constraint: joins the body atoms listed in
/// `order[depth..]` (indices into `ic.body()`), extending
/// `bindings`/`atoms`, and calls `f` on every full assignment. `atoms` is
/// indexed by *body position* so violations report matches in declaration
/// order regardless of join order.
///
/// When `greedy` is set, the next atom is re-chosen at every depth by
/// selectivity (most determined columns first); otherwise `order` is
/// followed as given.
struct Join<'a> {
    instance: &'a Instance,
    ic: &'a Ic,
    greedy: bool,
}

impl Join<'_> {
    fn run<B>(
        &self,
        order: &mut Vec<usize>,
        depth: usize,
        bindings: &mut Vec<Option<Value>>,
        atoms: &mut Vec<Option<DatabaseAtom>>,
        f: &mut impl FnMut(&[Option<Value>], &[Option<DatabaseAtom>]) -> ControlFlow<B>,
    ) -> ControlFlow<B> {
        if depth == order.len() {
            return f(bindings, atoms);
        }
        if self.greedy {
            // Most-selective-atom-first: most determined columns, then
            // smaller relation, then body order (deterministic).
            let best = (depth..order.len())
                .min_by_key(|&i| {
                    let atom = &self.ic.body()[order[i]];
                    (
                        usize::MAX - determined_cols(atom, bindings),
                        self.instance.relation(atom.rel).len(),
                        order[i],
                    )
                })
                .expect("non-empty suffix");
            order.swap(depth, best);
        }
        let body_idx = order[depth];
        let atom = &self.ic.body()[body_idx];
        let cands = Candidates::for_atom(self.instance, atom, bindings, |_| true);
        cands.for_each(self.instance, atom, |t| {
            let Some(newly) = try_match(atom, t, bindings) else {
                return ControlFlow::Continue(());
            };
            atoms[body_idx] = Some(DatabaseAtom::new(atom.rel, t.clone()));
            let res = self.run(order, depth + 1, bindings, atoms, f);
            atoms[body_idx] = None;
            unbind(bindings, &newly);
            res
        })
    }
}

/// Does some tuple witness `atom` under the assignment, matching only
/// `checked` positions? Index-probed version of the naive
/// `head_witness`: probe on the determined *checked* columns (one column
/// → its hash index, several → the exact composite index), then verify
/// the remaining checked positions (existential variables must repeat
/// consistently within the atom).
fn head_witness_indexed(
    instance: &Instance,
    ic: &Ic,
    atom: &IcAtom,
    mode: SatMode,
    bindings: &[Option<Value>],
) -> bool {
    let checked = |pos: usize| match mode {
        SatMode::NullAware => ic.relevant().is_relevant(atom.rel, pos),
        SatMode::Classical => true,
    };
    let cands = Candidates::for_atom(instance, atom, bindings, checked);
    let found = cands.for_each(instance, atom, |t| {
        let mut local: BTreeMap<VarId, &Value> = BTreeMap::new();
        for (pos, term) in atom.terms.iter().enumerate() {
            if !checked(pos) {
                continue;
            }
            let val = t.get(pos);
            let ok = match term {
                Term::Const(c) => val == c,
                Term::Var(v) => match &bindings[v.index()] {
                    Some(bound) => bound == val,
                    None => match local.get(v) {
                        Some(prev) => *prev == val,
                        None => {
                            local.insert(*v, val);
                            true
                        }
                    },
                },
            };
            if !ok {
                return ControlFlow::Continue(());
            }
        }
        ControlFlow::Break(())
    });
    found.is_break()
}

/// Is the ground constraint satisfied under a full body assignment?
/// (IsNull escape ∨ ϕ ∨ some head witness, all index-probed.)
pub(crate) fn ground_satisfied_indexed(
    instance: &Instance,
    ic: &Ic,
    mode: SatMode,
    bindings: &[Option<Value>],
) -> bool {
    if mode == SatMode::NullAware {
        for v in ic.relevant().escape_vars() {
            if matches!(bindings[v.index()], Some(Value::Null)) {
                return true;
            }
        }
    }
    if phi_escape(ic, bindings) {
        return true;
    }
    ic.head()
        .iter()
        .any(|atom| head_witness_indexed(instance, ic, atom, mode, bindings))
}

/// Indexed full check of one TGD: joins in body order (so violations are
/// reported in exactly the naive order) but with index probes at every
/// depth, and index-probed witness checks.
pub(crate) fn tgd_violations_indexed<B>(
    instance: &Instance,
    ic: &Ic,
    mode: SatMode,
    f: &mut impl FnMut(&[Option<Value>], Vec<DatabaseAtom>) -> ControlFlow<B>,
) -> ControlFlow<B> {
    let mut order: Vec<usize> = (0..ic.body().len()).collect();
    let mut bindings: Vec<Option<Value>> = vec![None; ic.var_count()];
    let mut atoms: Vec<Option<DatabaseAtom>> = vec![None; ic.body().len()];
    let join = Join {
        instance,
        ic,
        greedy: false,
    };
    join.run(
        &mut order,
        0,
        &mut bindings,
        &mut atoms,
        &mut |bindings, atoms| {
            if ground_satisfied_indexed(instance, ic, mode, bindings) {
                return ControlFlow::Continue(());
            }
            let ground: Vec<DatabaseAtom> = atoms
                .iter()
                .map(|a| a.clone().expect("full assignment"))
                .collect();
            f(bindings, ground)
        },
    )
}

/// Seeded check: pin body position `pin` to `tuple`, join the remaining
/// atoms most-selective-first, and report violating assignments.
fn seeded_tgd_violations<B>(
    instance: &Instance,
    ic: &Ic,
    mode: SatMode,
    pin: usize,
    tuple: &Tuple,
    f: &mut impl FnMut(&[Option<Value>], Vec<DatabaseAtom>) -> ControlFlow<B>,
) -> ControlFlow<B> {
    let mut bindings: Vec<Option<Value>> = vec![None; ic.var_count()];
    let mut atoms: Vec<Option<DatabaseAtom>> = vec![None; ic.body().len()];
    let atom = &ic.body()[pin];
    let Some(_newly) = try_match(atom, tuple, &mut bindings) else {
        return ControlFlow::Continue(());
    };
    atoms[pin] = Some(DatabaseAtom::new(atom.rel, tuple.clone()));
    let mut order: Vec<usize> = (0..ic.body().len()).filter(|&i| i != pin).collect();
    let join = Join {
        instance,
        ic,
        greedy: true,
    };
    join.run(
        &mut order,
        0,
        &mut bindings,
        &mut atoms,
        &mut |bindings, atoms| {
            if ground_satisfied_indexed(instance, ic, mode, bindings) {
                return ControlFlow::Continue(());
            }
            let ground: Vec<DatabaseAtom> = atoms
                .iter()
                .map(|a| a.clone().expect("full assignment"))
                .collect();
            f(bindings, ground)
        },
    )
}

/// Inverted head match: the partial assignment of universal variables a
/// removed tuple imposes on bodies it may have witnessed through `atom`.
/// `None` means the tuple cannot have witnessed anything via this atom.
fn head_seed_bindings(
    ic: &Ic,
    atom: &IcAtom,
    tuple: &Tuple,
    mode: SatMode,
) -> Option<Vec<Option<Value>>> {
    let mut bindings: Vec<Option<Value>> = vec![None; ic.var_count()];
    for (pos, term) in atom.terms.iter().enumerate() {
        let checked = match mode {
            SatMode::NullAware => ic.relevant().is_relevant(atom.rel, pos),
            SatMode::Classical => true,
        };
        if !checked {
            continue;
        }
        let val = tuple.get(pos);
        match term {
            Term::Const(c) => {
                if val != c {
                    return None;
                }
            }
            Term::Var(v) if ic.universal_vars().contains(v) => match &bindings[v.index()] {
                Some(bound) if bound != val => return None,
                Some(_) => {}
                None => bindings[v.index()] = Some(*val),
            },
            // Existential: constrains nothing about the body assignment
            // (only the witness itself had to repeat it consistently).
            Term::Var(_) => {}
        }
    }
    Some(bindings)
}

/// Violations of `ics` in `instance` that can involve an atom of `delta`.
///
/// `instance` must be the *post-change* instance (`delta` already applied).
/// Together with re-validating previously known violations, the result is
/// a complete account of `violations(instance)` — see the module docs for
/// the argument. Output is deterministic (constraint order, then seed
/// order, then join order) and de-duplicated.
pub fn violations_touching(
    instance: &Instance,
    ics: &IcSet,
    delta: &Delta,
    mode: SatMode,
) -> Vec<Violation> {
    let mut out: Vec<Violation> = Vec::new();
    let push = |v: Violation, out: &mut Vec<Violation>| {
        if !out.contains(&v) {
            out.push(v);
        }
    };
    for (index, constraint) in ics.constraints().iter().enumerate() {
        match constraint {
            Constraint::NotNull(nnc) => {
                for a in &delta.inserted {
                    if a.rel == nnc.rel
                        && a.tuple.get(nnc.position).is_null()
                        && instance.contains(a)
                    {
                        push(
                            Violation {
                                constraint_index: index,
                                kind: ViolationKind::NotNull {
                                    atom: a.clone(),
                                    position: nnc.position,
                                },
                            },
                            &mut out,
                        );
                    }
                }
            }
            Constraint::Tgd(ic) => {
                // (a) an inserted atom joins into a body position.
                for a in &delta.inserted {
                    if !instance.contains(a) {
                        continue;
                    }
                    for (k, batom) in ic.body().iter().enumerate() {
                        if batom.rel != a.rel {
                            continue;
                        }
                        let _ = seeded_tgd_violations(
                            instance,
                            ic,
                            mode,
                            k,
                            &a.tuple,
                            &mut |bindings, ground| {
                                push(
                                    Violation {
                                        constraint_index: index,
                                        kind: ViolationKind::Tgd {
                                            bindings: bindings.to_vec(),
                                            body_atoms: ground,
                                        },
                                    },
                                    &mut out,
                                );
                                ControlFlow::<()>::Continue(())
                            },
                        );
                    }
                }
                // (b) a removed atom may have been the last head witness.
                for a in &delta.removed {
                    if instance.contains(a) {
                        continue;
                    }
                    for hatom in ic.head() {
                        if hatom.rel != a.rel {
                            continue;
                        }
                        let Some(seed) = head_seed_bindings(ic, hatom, &a.tuple, mode) else {
                            continue;
                        };
                        let mut bindings = seed;
                        let mut atoms: Vec<Option<DatabaseAtom>> = vec![None; ic.body().len()];
                        let mut order: Vec<usize> = (0..ic.body().len()).collect();
                        let join = Join {
                            instance,
                            ic,
                            greedy: true,
                        };
                        let _ = join.run(
                            &mut order,
                            0,
                            &mut bindings,
                            &mut atoms,
                            &mut |bindings, atoms| {
                                if !ground_satisfied_indexed(instance, ic, mode, bindings) {
                                    let ground: Vec<DatabaseAtom> = atoms
                                        .iter()
                                        .map(|x| x.clone().expect("full assignment"))
                                        .collect();
                                    push(
                                        Violation {
                                            constraint_index: index,
                                            kind: ViolationKind::Tgd {
                                                bindings: bindings.to_vec(),
                                                body_atoms: ground,
                                            },
                                        },
                                        &mut out,
                                    );
                                }
                                ControlFlow::<()>::Continue(())
                            },
                        );
                    }
                }
            }
        }
    }
    out
}

/// Is a previously reported violation still a violation of `instance`?
/// O(violation size) plus index-probed witness checks — the worklist
/// re-validation step of the incremental repair engine.
pub fn violation_active(
    instance: &Instance,
    ics: &IcSet,
    violation: &Violation,
    mode: SatMode,
) -> bool {
    match &violation.kind {
        ViolationKind::NotNull { atom, .. } => instance.contains(atom),
        ViolationKind::Tgd {
            bindings,
            body_atoms,
        } => {
            let ic = ics.constraints()[violation.constraint_index]
                .as_ic()
                .expect("Tgd violation indexes a form-(1) constraint");
            body_atoms.iter().all(|a| instance.contains(a))
                && !ground_satisfied_indexed(instance, ic, mode, bindings)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{v, Constraint, Ic, IcSet, Nnc};
    use crate::satisfaction::violations_naive;
    use cqa_relational::{null, s, Schema, Value};
    use std::sync::Arc as StdArc;

    fn schema() -> StdArc<Schema> {
        Schema::builder()
            .relation("P", ["a", "b"])
            .relation("R", ["x", "y"])
            .finish()
            .unwrap()
            .into_shared()
    }

    fn build(rows: &[(&str, Vec<Value>)]) -> Instance {
        let mut d = Instance::empty(schema());
        for (rel, vals) in rows {
            d.insert_named(rel, Tuple::new(vals.clone())).unwrap();
        }
        d
    }

    fn ric() -> IcSet {
        let sc = schema();
        let ic = Ic::builder(&sc, "ric")
            .body_atom("P", [v("x"), v("y")])
            .head_atom("R", [v("x"), v("z")])
            .finish()
            .unwrap();
        IcSet::new([Constraint::from(ic)])
    }

    #[test]
    fn insert_into_body_is_caught() {
        let mut d = build(&[("P", vec![s("a"), s("b")]), ("R", vec![s("a"), s("c")])]);
        let ics = ric();
        assert!(violations_touching(&d, &ics, &Delta::default(), SatMode::NullAware).is_empty());
        let p = d.schema().rel_id("P").unwrap();
        let atom = DatabaseAtom::new(p, Tuple::new(vec![s("q"), s("r")]));
        d.insert(p, atom.tuple.clone()).unwrap();
        let touched = violations_touching(&d, &ics, &Delta::insertion(atom), SatMode::NullAware);
        assert_eq!(touched.len(), 1);
        assert_eq!(touched, violations_naive(&d, &ics, SatMode::NullAware));
    }

    #[test]
    fn remove_of_last_witness_is_caught() {
        let mut d = build(&[("P", vec![s("a"), s("b")]), ("R", vec![s("a"), s("c")])]);
        let ics = ric();
        let r = d.schema().rel_id("R").unwrap();
        let atom = DatabaseAtom::new(r, Tuple::new(vec![s("a"), s("c")]));
        d.remove(r, &atom.tuple);
        let touched = violations_touching(&d, &ics, &Delta::deletion(atom), SatMode::NullAware);
        assert_eq!(touched.len(), 1);
        assert_eq!(touched, violations_naive(&d, &ics, SatMode::NullAware));
    }

    #[test]
    fn remove_of_redundant_witness_is_silent() {
        let mut d = build(&[
            ("P", vec![s("a"), s("b")]),
            ("R", vec![s("a"), s("c")]),
            ("R", vec![s("a"), s("d")]),
        ]);
        let ics = ric();
        let r = d.schema().rel_id("R").unwrap();
        let atom = DatabaseAtom::new(r, Tuple::new(vec![s("a"), s("c")]));
        d.remove(r, &atom.tuple);
        assert!(
            violations_touching(&d, &ics, &Delta::deletion(atom), SatMode::NullAware).is_empty()
        );
    }

    #[test]
    fn nnc_insertion_caught_and_escape_respected() {
        let sc = schema();
        let nnc = Nnc::new(&sc, "nn", "P", 0).unwrap();
        let ics = IcSet::new([Constraint::from(nnc)]);
        let mut d = build(&[]);
        let p = sc.rel_id("P").unwrap();
        let bad = DatabaseAtom::new(p, Tuple::new(vec![null(), s("b")]));
        d.insert(p, bad.tuple.clone()).unwrap();
        let touched =
            violations_touching(&d, &ics, &Delta::insertion(bad.clone()), SatMode::NullAware);
        assert_eq!(touched.len(), 1);
        assert!(violation_active(&d, &ics, &touched[0], SatMode::NullAware));
        d.remove(p, &bad.tuple);
        assert!(!violation_active(&d, &ics, &touched[0], SatMode::NullAware));
    }

    #[test]
    fn violation_active_tracks_witness_arrival() {
        let mut d = build(&[("P", vec![s("a"), s("b")])]);
        let ics = ric();
        let viols = violations_naive(&d, &ics, SatMode::NullAware);
        assert_eq!(viols.len(), 1);
        assert!(violation_active(&d, &ics, &viols[0], SatMode::NullAware));
        d.insert_named("R", [s("a"), null()]).unwrap();
        assert!(!violation_active(&d, &ics, &viols[0], SatMode::NullAware));
    }
}
