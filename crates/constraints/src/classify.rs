//! Syntactic classification of form-(1) constraints into the paper's
//! subclasses: universal ICs (2), referential ICs (3), and the shapes used
//! in practice (denials, checks, functional dependencies).

use crate::ast::{Ic, Term};

/// The syntactic class of a form-(1) constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IcClass {
    /// Form (2): no existentially quantified variables.
    Universal,
    /// Form (3): one body atom, one head atom, no ϕ, at least one
    /// existential variable, and no existential variable repeated inside
    /// the head atom. (The repair-program rules 3 of Definition 9 are
    /// generated for exactly this class.)
    Referential,
    /// Has existential variables but does not fit form (3) — e.g.
    /// Example 13's `P(x,y) → ∃z Q(x,z,z)` (repeated existential) or
    /// Example 1(c)'s disjunctive-head constraint. Covered by `|=_N` and
    /// the direct repair engine, not by Definition 9 programs.
    GeneralExistential,
}

/// Classify a constraint.
pub fn classify(ic: &Ic) -> IcClass {
    if ic.existential_vars().is_empty() {
        return IcClass::Universal;
    }
    let ric_shape = ic.body().len() == 1 && ic.head().len() == 1 && ic.builtins().is_empty();
    if ric_shape && !has_repeated_existential(ic) {
        IcClass::Referential
    } else {
        IcClass::GeneralExistential
    }
}

fn has_repeated_existential(ic: &Ic) -> bool {
    for atom in ic.head() {
        let vars: Vec<_> = atom
            .terms
            .iter()
            .filter_map(Term::as_var)
            .filter(|v| ic.is_existential(*v))
            .collect();
        let mut sorted = vars.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != vars.len() {
            return true;
        }
    }
    false
}

/// Is this a denial constraint: `⋀ᵢ Pᵢ(x̄ᵢ) → false`?
pub fn is_denial(ic: &Ic) -> bool {
    ic.head().is_empty() && ic.builtins().is_empty()
}

/// Is this a check constraint (possibly multi-row): head empty, consequent
/// a pure builtin disjunction?
pub fn is_check(ic: &Ic) -> bool {
    ic.head().is_empty() && !ic.builtins().is_empty()
}

/// Is this a single-row check constraint (one body atom)?
pub fn is_single_row_check(ic: &Ic) -> bool {
    is_check(ic) && ic.body().len() == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{c, v, CmpOp, Ic};
    use cqa_relational::Schema;

    fn schema() -> Schema {
        Schema::builder()
            .relation("P", ["a", "b"])
            .relation("Q", ["x", "y", "z"])
            .relation("R", ["r"])
            .finish()
            .unwrap()
    }

    #[test]
    fn universal_classification() {
        let sc = schema();
        let uic = Ic::builder(&sc, "u")
            .body_atom("P", [v("x"), v("y")])
            .head_atom("R", [v("x")])
            .finish()
            .unwrap();
        assert_eq!(classify(&uic), IcClass::Universal);
        assert!(!is_denial(&uic));
    }

    #[test]
    fn referential_classification() {
        let sc = schema();
        let ric = Ic::builder(&sc, "r")
            .body_atom("P", [v("x"), v("y")])
            .head_atom("Q", [v("x"), v("u"), v("w")])
            .finish()
            .unwrap();
        assert_eq!(classify(&ric), IcClass::Referential);
    }

    #[test]
    fn repeated_existential_is_general() {
        // Example 13 shape.
        let sc = schema();
        let ic = Ic::builder(&sc, "g")
            .body_atom("P", [v("x"), v("y")])
            .head_atom("Q", [v("x"), v("z"), v("z")])
            .finish()
            .unwrap();
        assert_eq!(classify(&ic), IcClass::GeneralExistential);
    }

    #[test]
    fn multi_head_existential_is_general() {
        // Example 1(c): S(x) → ∃yz (R′(x,y) ∨ R(x,y,z)) — adapted.
        let sc = schema();
        let ic = Ic::builder(&sc, "g")
            .body_atom("R", [v("x")])
            .head_atom("P", [v("x"), v("y")])
            .head_atom("Q", [v("x"), v("u"), v("w")])
            .finish()
            .unwrap();
        assert_eq!(classify(&ic), IcClass::GeneralExistential);
    }

    #[test]
    fn denial_and_check_shapes() {
        let sc = schema();
        let denial = Ic::builder(&sc, "d")
            .body_atom("P", [v("x"), v("y")])
            .body_atom("R", [v("x")])
            .finish()
            .unwrap();
        assert!(is_denial(&denial));
        assert_eq!(classify(&denial), IcClass::Universal);

        let check = Ic::builder(&sc, "c")
            .body_atom("P", [v("x"), v("y")])
            .builtin(v("y"), CmpOp::Gt, c(0))
            .finish()
            .unwrap();
        assert!(is_check(&check));
        assert!(is_single_row_check(&check));
        assert!(!is_denial(&check));

        let multirow = Ic::builder(&sc, "m")
            .body_atom("P", [v("x"), v("y")])
            .body_atom("P", [v("y"), v("z")])
            .builtin(v("z"), CmpOp::Gt, v("x"))
            .finish()
            .unwrap();
        assert!(is_check(&multirow));
        assert!(!is_single_row_check(&multirow));
    }
}
