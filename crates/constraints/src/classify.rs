//! Syntactic classification of form-(1) constraints into the paper's
//! subclasses: universal ICs (2), referential ICs (3), and the shapes used
//! in practice (denials, checks, functional dependencies) — plus the
//! whole-set [`PlanClass`] analysis the `cqa-core` query planner keys its
//! fast-path dispatch on.

use crate::ast::{CmpOp, Ic, IcSet, Term, VarId};
use cqa_relational::RelId;

/// The syntactic class of a form-(1) constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IcClass {
    /// Form (2): no existentially quantified variables.
    Universal,
    /// Form (3): one body atom, one head atom, no ϕ, at least one
    /// existential variable, and no existential variable repeated inside
    /// the head atom. (The repair-program rules 3 of Definition 9 are
    /// generated for exactly this class.)
    Referential,
    /// Has existential variables but does not fit form (3) — e.g.
    /// Example 13's `P(x,y) → ∃z Q(x,z,z)` (repeated existential) or
    /// Example 1(c)'s disjunctive-head constraint. Covered by `|=_N` and
    /// the direct repair engine, not by Definition 9 programs.
    GeneralExistential,
}

/// Classify a constraint.
pub fn classify(ic: &Ic) -> IcClass {
    if ic.existential_vars().is_empty() {
        return IcClass::Universal;
    }
    let ric_shape = ic.body().len() == 1 && ic.head().len() == 1 && ic.builtins().is_empty();
    if ric_shape && !has_repeated_existential(ic) {
        IcClass::Referential
    } else {
        IcClass::GeneralExistential
    }
}

fn has_repeated_existential(ic: &Ic) -> bool {
    for atom in ic.head() {
        let vars: Vec<_> = atom
            .terms
            .iter()
            .filter_map(Term::as_var)
            .filter(|v| ic.is_existential(*v))
            .collect();
        let mut sorted = vars.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != vars.len() {
            return true;
        }
    }
    false
}

/// Is this a denial constraint: `⋀ᵢ Pᵢ(x̄ᵢ) → false`?
pub fn is_denial(ic: &Ic) -> bool {
    ic.head().is_empty() && ic.builtins().is_empty()
}

/// Is this a check constraint (possibly multi-row): head empty, consequent
/// a pure builtin disjunction?
pub fn is_check(ic: &Ic) -> bool {
    ic.head().is_empty() && !ic.builtins().is_empty()
}

/// Is this a single-row check constraint (one body atom)?
pub fn is_single_row_check(ic: &Ic) -> bool {
    is_check(ic) && ic.body().len() == 1
}

/// The key/determinant structure of a functional dependency, as
/// recognised by [`fd_key_columns`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FdKey {
    /// The constrained relation.
    pub rel: RelId,
    /// 0-based determinant ("key") positions, ascending.
    pub determinant: Vec<usize>,
    /// The 0-based dependent position the determinant must fix.
    pub dependent: usize,
}

/// Recognise the functional-dependency shape
/// `R(x̄) ∧ R(x̄′) → x_dep = x′_dep` (the [`crate::builders::
/// functional_dependency`] encoding, single- or composite-determinant):
///
/// * head empty, exactly one `=` builtin, exactly two body atoms over the
///   same relation, all terms distinct variables within each atom;
/// * the two atoms share variables at exactly the determinant positions
///   (same position in both atoms, at least one of them);
/// * the builtin equates the two atoms' variables at one shared
///   *non-determinant* position — the dependent.
///
/// `is_denial`/`is_single_row_check` both answer `false` on this shape
/// (the consequent is a builtin and the body is two rows), which is why
/// the planner needs a dedicated recogniser. Anything else — constants in
/// the atoms, repeated variables inside one atom, extra builtins,
/// cross-position sharing — returns `None`; callers must treat `None` as
/// "not FD-shaped", never as "unconstrained".
pub fn fd_key_columns(ic: &Ic) -> Option<FdKey> {
    if !ic.head().is_empty() || ic.builtins().len() != 1 || ic.body().len() != 2 {
        return None;
    }
    let (a, b) = (&ic.body()[0], &ic.body()[1]);
    if a.rel != b.rel || a.terms.len() != b.terms.len() {
        return None;
    }
    // Each atom: all-variable terms, no variable repeated inside the atom.
    let vars_of = |atom: &crate::ast::IcAtom| -> Option<Vec<VarId>> {
        let mut vars = Vec::with_capacity(atom.terms.len());
        for t in &atom.terms {
            match t {
                Term::Var(v) if !vars.contains(v) => vars.push(*v),
                _ => return None,
            }
        }
        Some(vars)
    };
    let (av, bv) = (vars_of(a)?, vars_of(b)?);
    // Shared variables must sit at identical positions (the determinant);
    // a variable of one atom appearing at a *different* position of the
    // other is some other join shape, not an FD.
    let mut determinant = Vec::new();
    for (pos, va) in av.iter().enumerate() {
        if *va == bv[pos] {
            determinant.push(pos);
        } else if bv.contains(va) || av.contains(&bv[pos]) {
            return None;
        }
    }
    if determinant.is_empty() || determinant.len() == av.len() {
        return None; // no key, or the atoms are identical
    }
    // The lone builtin must equate the two atoms' variables at one
    // non-determinant position (either orientation).
    let bi = &ic.builtins()[0];
    if bi.op != CmpOp::Eq {
        return None;
    }
    let (Term::Var(l), Term::Var(r)) = (&bi.lhs, &bi.rhs) else {
        return None;
    };
    let dependent = av.iter().position(|v| v == l || v == r)?;
    if determinant.contains(&dependent)
        || bv[dependent] != if av[dependent] == *l { *r } else { *l }
    {
        return None;
    }
    Some(FdKey {
        rel: a.rel,
        determinant,
        dependent,
    })
}

/// The whole-set classification the `cqa-core` planner dispatches on.
/// Query-shape checks (quantifier-freeness, single disjunct) live with
/// the planner; this is the constraint half of the decision table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanClass {
    /// Every constraint is a key-style FD ([`fd_key_columns`]) or a NOT
    /// NULL constraint: repairs are deletion-only and conflicts are
    /// pairwise, so quantifier-free queries are first-order rewritable
    /// (Fuxman–Miller guards) on the inconsistent instance.
    KeyFdOnly,
    /// Every constraint has an atom-free consequent (FDs, denials,
    /// checks) or is a NOT NULL constraint: repairs are still
    /// deletion-only — exactly the maximal conflict-free subsets — so a
    /// polynomial true/false-tuple chase answers quantifier-free queries
    /// without enumeration, but violations may span more than two rows.
    DeletionOnly,
    /// Some constraint can repair by *insertion* (a universal IC with
    /// head atoms, a referential IC, a general existential IC): only the
    /// repair-enumeration engines are sound.
    General,
}

/// Classify a whole constraint set for fast-path planning.
pub fn plan_class(ics: &IcSet) -> PlanClass {
    let mut class = PlanClass::KeyFdOnly;
    for con in ics.constraints() {
        let Some(ic) = con.as_ic() else {
            continue; // NOT NULL: deletion-only in every class
        };
        if !ic.head().is_empty() {
            return PlanClass::General;
        }
        if fd_key_columns(ic).is_none() {
            class = PlanClass::DeletionOnly;
        }
    }
    class
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{c, v, CmpOp, Ic};
    use cqa_relational::Schema;

    fn schema() -> Schema {
        Schema::builder()
            .relation("P", ["a", "b"])
            .relation("Q", ["x", "y", "z"])
            .relation("R", ["r"])
            .finish()
            .unwrap()
    }

    #[test]
    fn universal_classification() {
        let sc = schema();
        let uic = Ic::builder(&sc, "u")
            .body_atom("P", [v("x"), v("y")])
            .head_atom("R", [v("x")])
            .finish()
            .unwrap();
        assert_eq!(classify(&uic), IcClass::Universal);
        assert!(!is_denial(&uic));
    }

    #[test]
    fn referential_classification() {
        let sc = schema();
        let ric = Ic::builder(&sc, "r")
            .body_atom("P", [v("x"), v("y")])
            .head_atom("Q", [v("x"), v("u"), v("w")])
            .finish()
            .unwrap();
        assert_eq!(classify(&ric), IcClass::Referential);
    }

    #[test]
    fn repeated_existential_is_general() {
        // Example 13 shape.
        let sc = schema();
        let ic = Ic::builder(&sc, "g")
            .body_atom("P", [v("x"), v("y")])
            .head_atom("Q", [v("x"), v("z"), v("z")])
            .finish()
            .unwrap();
        assert_eq!(classify(&ic), IcClass::GeneralExistential);
    }

    #[test]
    fn multi_head_existential_is_general() {
        // Example 1(c): S(x) → ∃yz (R′(x,y) ∨ R(x,y,z)) — adapted.
        let sc = schema();
        let ic = Ic::builder(&sc, "g")
            .body_atom("R", [v("x")])
            .head_atom("P", [v("x"), v("y")])
            .head_atom("Q", [v("x"), v("u"), v("w")])
            .finish()
            .unwrap();
        assert_eq!(classify(&ic), IcClass::GeneralExistential);
    }

    #[test]
    fn denial_and_check_shapes() {
        let sc = schema();
        let denial = Ic::builder(&sc, "d")
            .body_atom("P", [v("x"), v("y")])
            .body_atom("R", [v("x")])
            .finish()
            .unwrap();
        assert!(is_denial(&denial));
        assert_eq!(classify(&denial), IcClass::Universal);

        let check = Ic::builder(&sc, "c")
            .body_atom("P", [v("x"), v("y")])
            .builtin(v("y"), CmpOp::Gt, c(0))
            .finish()
            .unwrap();
        assert!(is_check(&check));
        assert!(is_single_row_check(&check));
        assert!(!is_denial(&check));

        let multirow = Ic::builder(&sc, "m")
            .body_atom("P", [v("x"), v("y")])
            .body_atom("P", [v("y"), v("z")])
            .builtin(v("z"), CmpOp::Gt, v("x"))
            .finish()
            .unwrap();
        assert!(is_check(&multirow));
        assert!(!is_single_row_check(&multirow));
    }

    #[test]
    fn fd_key_columns_recognises_builder_fds() {
        let sc = schema();
        // Single-column determinant: P[0] → P[1].
        let fd = crate::builders::functional_dependency(&sc, "P", &[0], 1).unwrap();
        let key = fd_key_columns(&fd).unwrap();
        assert_eq!(key.rel, sc.rel_id("P").unwrap());
        assert_eq!(key.determinant, vec![0]);
        assert_eq!(key.dependent, 1);
        // Neither legacy recogniser sees the FD shape — the gap this
        // function closes.
        assert!(!is_denial(&fd));
        assert!(!is_single_row_check(&fd));
        assert!(is_check(&fd));
    }

    #[test]
    fn fd_key_columns_composite_determinant() {
        // The PR-4 pool's composite shape: Q[0,1] → Q[2].
        let sc = schema();
        let fd = crate::builders::functional_dependency(&sc, "Q", &[0, 1], 2).unwrap();
        let key = fd_key_columns(&fd).unwrap();
        assert_eq!(key.determinant, vec![0, 1]);
        assert_eq!(key.dependent, 2);
        // Non-contiguous composite determinant, dependent in the middle.
        let fd2 = crate::builders::functional_dependency(&sc, "Q", &[0, 2], 1).unwrap();
        let key2 = fd_key_columns(&fd2).unwrap();
        assert_eq!(key2.determinant, vec![0, 2]);
        assert_eq!(key2.dependent, 1);
    }

    #[test]
    fn fd_key_columns_rejects_non_fd_shapes() {
        let sc = schema();
        // Denial: two atoms, no builtin.
        let denial = Ic::builder(&sc, "d")
            .body_atom("P", [v("x"), v("y")])
            .body_atom("P", [v("x"), v("z")])
            .finish()
            .unwrap();
        assert!(fd_key_columns(&denial).is_none());
        // Multi-row check whose builtin is not an equality.
        let ineq = Ic::builder(&sc, "i")
            .body_atom("P", [v("x"), v("y")])
            .body_atom("P", [v("x"), v("z")])
            .builtin(v("y"), CmpOp::Lt, v("z"))
            .finish()
            .unwrap();
        assert!(fd_key_columns(&ineq).is_none());
        // Different relations.
        let cross = Ic::builder(&sc, "x")
            .body_atom("P", [v("x"), v("y")])
            .body_atom("Q", [v("x"), v("z"), v("w")])
            .builtin(v("y"), CmpOp::Eq, v("z"))
            .finish()
            .unwrap();
        assert!(fd_key_columns(&cross).is_none());
        // Cross-position sharing is a self-join, not an FD.
        let twisted = Ic::builder(&sc, "t")
            .body_atom("P", [v("x"), v("y")])
            .body_atom("P", [v("y"), v("z")])
            .builtin(v("x"), CmpOp::Eq, v("z"))
            .finish()
            .unwrap();
        assert!(fd_key_columns(&twisted).is_none());
        // Constant inside an atom.
        let constant = Ic::builder(&sc, "c")
            .body_atom("P", [v("x"), v("y")])
            .body_atom("P", [v("x"), c("k")])
            .builtin(v("y"), CmpOp::Eq, c("k"))
            .finish()
            .unwrap();
        assert!(fd_key_columns(&constant).is_none());
        // A RIC is not an FD.
        let ric = Ic::builder(&sc, "r")
            .body_atom("P", [v("x"), v("y")])
            .head_atom("Q", [v("x"), v("u"), v("w")])
            .finish()
            .unwrap();
        assert!(fd_key_columns(&ric).is_none());
    }

    #[test]
    fn plan_class_over_whole_sets() {
        use crate::ast::{Constraint, IcSet, Nnc};
        let sc = schema();
        let fd = crate::builders::functional_dependency(&sc, "Q", &[0, 1], 2).unwrap();
        let nnc = Nnc::new(&sc, "nn", "P", 0).unwrap();
        let denial = Ic::builder(&sc, "d")
            .body_atom("P", [v("x"), v("y")])
            .body_atom("R", [v("x")])
            .finish()
            .unwrap();
        let ric = Ic::builder(&sc, "r")
            .body_atom("P", [v("x"), v("y")])
            .head_atom("Q", [v("x"), v("u"), v("w")])
            .finish()
            .unwrap();

        // Empty set: vacuously key-FD-only.
        assert_eq!(plan_class(&IcSet::default()), PlanClass::KeyFdOnly);
        let key_only = IcSet::new([
            Constraint::from(fd.clone()),
            Constraint::NotNull(nnc.clone()),
        ]);
        assert_eq!(plan_class(&key_only), PlanClass::KeyFdOnly);
        let deletion_only = IcSet::new([
            Constraint::from(fd.clone()),
            Constraint::from(denial),
            Constraint::NotNull(nnc),
        ]);
        assert_eq!(plan_class(&deletion_only), PlanClass::DeletionOnly);
        let general = IcSet::new([Constraint::from(fd), Constraint::from(ric)]);
        assert_eq!(plan_class(&general), PlanClass::General);
    }
}
