//! Property suite: the index-probed `|=_N` evaluator is equivalent to the
//! literal, projection-based Definition 4 (`D^{A(ψ)} |= ψ^N`) and to the
//! retained naive full-scan oracle on random instances and a diverse
//! constraint pool; and the incremental `violations_touching` account is
//! complete against the oracle across random mutation sequences.
//!
//! The implementations share no evaluation code (the projection checker
//! materialises `D^A` and re-implements the join; the naive evaluator
//! scans, the indexed one probes), so agreement over randomised inputs is
//! strong evidence that the optimised paths are faithful to the
//! definition. Randomness is the workspace's own deterministic
//! [`XorShift`] — no external property-testing crates.

use cqa_constraints::{
    c, satisfies_via_projection, v, violation_active, violations, violations_naive,
    violations_touching, CmpOp, Constraint, Ic, IcSet, SatMode, Violation,
};
use cqa_relational::testing::XorShift;
use cqa_relational::{s, DatabaseAtom, Delta, Instance, Schema, Tuple, Value};
use std::sync::Arc;

const CASES: u64 = 256;

fn schema() -> Arc<Schema> {
    Schema::builder()
        .relation("P", ["a", "b"])
        .relation("R", ["x", "y", "z"])
        .relation("T", ["t"])
        .finish()
        .unwrap()
        .into_shared()
}

fn constraint_pool(sc: &Schema) -> Vec<Ic> {
    vec![
        // referential with join: P(x,y) → ∃w R(x,y,w)
        Ic::builder(sc, "c0")
            .body_atom("P", [v("x"), v("y")])
            .head_atom("R", [v("x"), v("y"), v("w")])
            .finish()
            .unwrap(),
        // universal, non-relevant column: P(x,y) → T(x)
        Ic::builder(sc, "c1")
            .body_atom("P", [v("x"), v("y")])
            .head_atom("T", [v("x")])
            .finish()
            .unwrap(),
        // denial with self-join: P(x,y) ∧ P(y,w) → false
        Ic::builder(sc, "c2")
            .body_atom("P", [v("x"), v("y")])
            .body_atom("P", [v("y"), v("w")])
            .finish()
            .unwrap(),
        // check with constant: R(x,y,z) → x ≠ 'c0'
        Ic::builder(sc, "c3")
            .body_atom("R", [v("x"), v("y"), v("z")])
            .builtin(v("x"), CmpOp::Neq, c(s("c0")))
            .finish()
            .unwrap(),
        // FD: R(x,y,z) ∧ R(x,y2,z2) → y = y2
        Ic::builder(sc, "c4")
            .body_atom("R", [v("x"), v("y"), v("z")])
            .body_atom("R", [v("x"), v("y2"), v("z2")])
            .builtin(v("y"), CmpOp::Eq, v("y2"))
            .finish()
            .unwrap(),
        // repeated existential (Example 13 shape): T(x) → ∃z R(x,z,z)
        Ic::builder(sc, "c5")
            .body_atom("T", [v("x")])
            .head_atom("R", [v("x"), v("z"), v("z")])
            .finish()
            .unwrap(),
        // disjunctive head: P(x,y) → T(x) ∨ T(y)
        Ic::builder(sc, "c6")
            .body_atom("P", [v("x"), v("y")])
            .head_atom("T", [v("x")])
            .head_atom("T", [v("y")])
            .finish()
            .unwrap(),
        // constant in body atom: P('c1', y) → T(y)
        Ic::builder(sc, "c7")
            .body_atom("P", [c(s("c1")), v("y")])
            .head_atom("T", [v("y")])
            .finish()
            .unwrap(),
        // multi-attribute FD (composite determinant (x,y)):
        // R(x,y,z) ∧ R(x,y,z2) → z = z2 — the seeded second atom has two
        // determined columns and goes through the composite index.
        Ic::builder(sc, "c8")
            .body_atom("R", [v("x"), v("y"), v("z")])
            .body_atom("R", [v("x"), v("y"), v("z2")])
            .builtin(v("z"), CmpOp::Eq, v("z2"))
            .finish()
            .unwrap(),
        // composite referential: R(x,y,z) → P(x,y) — the head witness
        // check is determined on both relevant positions at once.
        Ic::builder(sc, "c9")
            .body_atom("R", [v("x"), v("y"), v("z")])
            .head_atom("P", [v("x"), v("y")])
            .finish()
            .unwrap(),
    ]
}

fn value(rng: &mut XorShift, with_null: bool) -> Value {
    let k = rng.below(if with_null { 4 } else { 3 });
    match k {
        3 => Value::Null,
        j => s(&format!("c{j}")),
    }
}

fn instance(rng: &mut XorShift, sc: &Arc<Schema>, with_null: bool) -> Instance {
    let mut d = Instance::empty(sc.clone());
    for _ in 0..rng.below(4) {
        let t: Tuple = [value(rng, with_null), value(rng, with_null)].into();
        d.insert_named("P", t).unwrap();
    }
    for _ in 0..rng.below(4) {
        let t: Tuple = [
            value(rng, with_null),
            value(rng, with_null),
            value(rng, with_null),
        ]
        .into();
        d.insert_named("R", t).unwrap();
    }
    for _ in 0..rng.below(3) {
        let t: Tuple = [value(rng, with_null)].into();
        d.insert_named("T", t).unwrap();
    }
    d
}

#[test]
fn direct_evaluator_equals_projection_definition() {
    let sc = schema();
    let pool = constraint_pool(&sc);
    let mut rng = XorShift::new(201);
    for _ in 0..CASES {
        let d = instance(&mut rng, &sc, true);
        let ic = &pool[rng.below(pool.len())];
        let direct = violations(
            &d,
            &IcSet::new([Constraint::from(ic.clone())]),
            SatMode::NullAware,
        )
        .is_empty();
        let projected = satisfies_via_projection(&d, ic);
        assert_eq!(direct, projected, "constraint {}", ic.name());
    }
}

#[test]
fn classical_and_null_aware_agree_on_null_free_instances() {
    // The paper's remark after Definition 4.
    let sc = schema();
    let pool = constraint_pool(&sc);
    let mut rng = XorShift::new(202);
    for _ in 0..CASES {
        let d = instance(&mut rng, &sc, false);
        let ics = IcSet::new([Constraint::from(pool[rng.below(pool.len())].clone())]);
        let null_aware = violations(&d, &ics, SatMode::NullAware).len();
        let classical = violations(&d, &ics, SatMode::Classical).len();
        assert_eq!(null_aware, classical);
    }
}

/// The indexed evaluator agrees with the naive full-scan oracle —
/// element-for-element, in the same order — on random instances and
/// random IC subsets, in both satisfaction modes.
#[test]
fn indexed_evaluator_equals_naive_oracle() {
    let sc = schema();
    let pool = constraint_pool(&sc);
    let mut rng = XorShift::new(203);
    for _ in 0..CASES {
        let d = instance(&mut rng, &sc, true);
        // Random non-empty subset of the pool.
        let mut ics = IcSet::default();
        for ic in &pool {
            if rng.chance(1, 2) {
                ics.push(ic.clone());
            }
        }
        ics.push(pool[rng.below(pool.len())].clone());
        for mode in [SatMode::NullAware, SatMode::Classical] {
            let indexed = violations(&d, &ics, mode);
            let naive = violations_naive(&d, &ics, mode);
            assert_eq!(indexed, naive, "mode {mode:?}");
        }
    }
}

fn same_violation_set(a: &[Violation], b: &[Violation]) -> bool {
    a.iter().all(|x| b.contains(x)) && b.iter().all(|x| a.contains(x))
}

/// Completeness of the incremental account across random mutation
/// sequences: re-validated old violations plus `violations_touching` of
/// each single-atom delta reconstruct exactly the oracle's violation set
/// of the mutated instance.
#[test]
fn incremental_account_matches_oracle_across_mutations() {
    let sc = schema();
    let pool = constraint_pool(&sc);
    for seed in 0..96u64 {
        let mut rng = XorShift::new(seed * 13 + 5);
        let mut d = instance(&mut rng, &sc, true);
        let mut ics = IcSet::default();
        ics.push(pool[rng.below(pool.len())].clone());
        if rng.chance(1, 2) {
            ics.push(pool[rng.below(pool.len())].clone());
        }
        let mut current: Vec<Violation> = violations(&d, &ics, SatMode::NullAware);
        for step in 0..24 {
            // Random single-atom mutation over the pool's relations.
            let rel = sc.require(["P", "R", "T"][rng.below(3)]).unwrap();
            let arity = sc.relation(rel).arity();
            let tuple = Tuple::new((0..arity).map(|_| value(&mut rng, true)));
            let atom = DatabaseAtom::new(rel, tuple);
            let delta = if rng.chance(1, 2) {
                if !d.insert(rel, atom.tuple.clone()).unwrap() {
                    continue; // no-op mutation
                }
                Delta::insertion(atom)
            } else {
                if !d.remove(rel, &atom.tuple) {
                    continue;
                }
                Delta::deletion(atom)
            };
            // Worklist update: survivors + touching, deduplicated.
            let mut next: Vec<Violation> = current
                .iter()
                .filter(|vl| violation_active(&d, &ics, vl, SatMode::NullAware))
                .cloned()
                .collect();
            for vl in violations_touching(&d, &ics, &delta, SatMode::NullAware) {
                if !next.contains(&vl) {
                    next.push(vl);
                }
            }
            let oracle = violations_naive(&d, &ics, SatMode::NullAware);
            assert!(
                same_violation_set(&next, &oracle),
                "seed {seed} step {step}: incremental {next:#?} vs oracle {oracle:#?}"
            );
            current = next;
        }
    }
}
