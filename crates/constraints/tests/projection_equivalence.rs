//! Property suite: the direct `|=_N` evaluator is equivalent to the
//! literal, projection-based Definition 4 (`D^{A(ψ)} |= ψ^N`) on random
//! instances and a diverse constraint pool.
//!
//! The two implementations share no evaluation code (the projection
//! checker materialises `D^A` and re-implements the join), so agreement
//! over randomised inputs is strong evidence that the optimised path is
//! faithful to the definition.

use cqa_constraints::{c, satisfies_via_projection, v, violations, CmpOp, Constraint, Ic, IcSet, SatMode};
use cqa_relational::{s, Instance, Schema, Value};
use proptest::prelude::*;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Schema::builder()
        .relation("P", ["a", "b"])
        .relation("R", ["x", "y", "z"])
        .relation("T", ["t"])
        .finish()
        .unwrap()
        .into_shared()
}

fn constraint_pool(sc: &Schema) -> Vec<Ic> {
    vec![
        // universal with join: P(x,y) ∧ T(x) → R(x,y,z)… no z unsafe; use head ∃
        Ic::builder(sc, "c0")
            .body_atom("P", [v("x"), v("y")])
            .head_atom("R", [v("x"), v("y"), v("w")])
            .finish()
            .unwrap(),
        // universal, non-relevant column: P(x,y) → T(x)
        Ic::builder(sc, "c1")
            .body_atom("P", [v("x"), v("y")])
            .head_atom("T", [v("x")])
            .finish()
            .unwrap(),
        // denial with self-join: P(x,y) ∧ P(y,w) → false
        Ic::builder(sc, "c2")
            .body_atom("P", [v("x"), v("y")])
            .body_atom("P", [v("y"), v("w")])
            .finish()
            .unwrap(),
        // check with constant: R(x,y,z) → x ≠ 'c0'
        Ic::builder(sc, "c3")
            .body_atom("R", [v("x"), v("y"), v("z")])
            .builtin(v("x"), CmpOp::Neq, c(s("c0")))
            .finish()
            .unwrap(),
        // FD: R(x,y,z) ∧ R(x,y2,z2) → y = y2
        Ic::builder(sc, "c4")
            .body_atom("R", [v("x"), v("y"), v("z")])
            .body_atom("R", [v("x"), v("y2"), v("z2")])
            .builtin(v("y"), CmpOp::Eq, v("y2"))
            .finish()
            .unwrap(),
        // repeated existential (Example 13 shape): T(x) → ∃z R(x,z,z)
        Ic::builder(sc, "c5")
            .body_atom("T", [v("x")])
            .head_atom("R", [v("x"), v("z"), v("z")])
            .finish()
            .unwrap(),
        // disjunctive head: P(x,y) → T(x) ∨ T(y)
        Ic::builder(sc, "c6")
            .body_atom("P", [v("x"), v("y")])
            .head_atom("T", [v("x")])
            .head_atom("T", [v("y")])
            .finish()
            .unwrap(),
        // constant in body atom: P('c1', y) → T(y)
        Ic::builder(sc, "c7")
            .body_atom("P", [c(s("c1")), v("y")])
            .head_atom("T", [v("y")])
            .finish()
            .unwrap(),
    ]
}

fn value_strategy() -> impl Strategy<Value = Value> + Clone {
    proptest::sample::select(vec![s("c0"), s("c1"), s("c2"), Value::Null])
}

fn value_strategy_no_null() -> impl Strategy<Value = Value> + Clone {
    proptest::sample::select(vec![s("c0"), s("c1"), s("c2")])
}

fn instance_from(
    sc: Arc<Schema>,
    values: impl Strategy<Value = Value> + Clone + 'static,
) -> impl Strategy<Value = Instance> {
    let p = proptest::collection::btree_set((values.clone(), values.clone()), 0..4);
    let r = proptest::collection::btree_set(
        (values.clone(), values.clone(), values.clone()),
        0..4,
    );
    let t = proptest::collection::btree_set(values, 0..3);
    (p, r, t).prop_map(move |(ps, rs, ts)| {
        let mut d = Instance::empty(sc.clone());
        for (a, b) in ps {
            d.insert_named("P", [a, b]).unwrap();
        }
        for (x, y, z) in rs {
            d.insert_named("R", [x, y, z]).unwrap();
        }
        for t in ts {
            d.insert_named("T", [t]).unwrap();
        }
        d
    })
}

fn instance_strategy(sc: Arc<Schema>) -> impl Strategy<Value = Instance> {
    instance_from(sc, value_strategy())
}

fn null_free_instance_strategy(sc: Arc<Schema>) -> impl Strategy<Value = Instance> {
    instance_from(sc, value_strategy_no_null())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn direct_evaluator_equals_projection_definition(
        d in instance_strategy(schema()),
        which in 0usize..8,
    ) {
        let sc = schema();
        let ic = constraint_pool(&sc)[which].clone();
        let direct = violations(
            &d,
            &IcSet::new([Constraint::from(ic.clone())]),
            SatMode::NullAware,
        )
        .is_empty();
        let projected = satisfies_via_projection(&d, &ic);
        prop_assert_eq!(direct, projected, "constraint {}", ic.name());
    }

    #[test]
    fn classical_and_null_aware_agree_on_null_free_instances(
        d in null_free_instance_strategy(schema()),
        which in 0usize..8,
    ) {
        // The paper's remark after Definition 4.
        let sc = schema();
        let ic = constraint_pool(&sc)[which].clone();
        let ics = IcSet::new([Constraint::from(ic)]);
        let null_aware = violations(&d, &ics, SatMode::NullAware).len();
        let classical = violations(&d, &ics, SatMode::Classical).len();
        prop_assert_eq!(null_aware, classical);
    }

    #[test]
    fn null_aware_violations_subset_of_classical(
        d in instance_strategy(schema()),
        which in 0usize..8,
    ) {
        // IsNull escapes only ever *remove* violations relative to the
        // classical reading restricted to relevant attributes… for the
        // subset claim to be exact we compare counts per ground body.
        let sc = schema();
        let ic = constraint_pool(&sc)[which].clone();
        let ics = IcSet::new([Constraint::from(ic)]);
        let null_aware = violations(&d, &ics, SatMode::NullAware).len();
        // Classical witnesses are matched on *all* positions, so classical
        // can have both more violations (no escapes) and fewer (stricter
        // witness match is impossible — more matches is impossible).
        // The robust invariant: a null-free instance gives equal counts
        // (covered above); here we only require evaluation terminates and
        // is deterministic.
        let again = violations(&d, &ics, SatMode::NullAware).len();
        prop_assert_eq!(null_aware, again);
    }
}
