//! Property suite for the relational substrate: value ordering, tuple
//! covering, and symmetric-difference algebra.

use cqa_relational::{delta, DatabaseAtom, Instance, RelId, Schema, Tuple, Value};
use proptest::prelude::*;
use std::sync::Arc;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        "[a-c]{0,2}".prop_map(Value::str),
    ]
}

fn tuple_strategy(arity: usize) -> impl Strategy<Value = Tuple> {
    proptest::collection::vec(value_strategy(), arity).prop_map(Tuple::new)
}

fn schema() -> Arc<Schema> {
    Schema::builder()
        .relation("P", ["a", "b"])
        .relation("Q", ["x"])
        .finish()
        .unwrap()
        .into_shared()
}

fn instance_strategy(sc: Arc<Schema>) -> impl Strategy<Value = Instance> {
    let p = proptest::collection::btree_set(tuple_strategy(2), 0..5);
    let q = proptest::collection::btree_set(tuple_strategy(1), 0..5);
    (p, q).prop_map(move |(ps, qs)| {
        let mut d = Instance::empty(sc.clone());
        for t in ps {
            d.insert(RelId(0), t).unwrap();
        }
        for t in qs {
            d.insert(RelId(1), t).unwrap();
        }
        d
    })
}

proptest! {
    #[test]
    fn value_order_is_total_and_antisymmetric(
        a in value_strategy(),
        b in value_strategy(),
        c in value_strategy(),
    ) {
        // total
        prop_assert!(a <= b || b <= a);
        // antisymmetric
        if a <= b && b <= a {
            prop_assert_eq!(&a, &b);
        }
        // transitive
        if a <= b && b <= c {
            prop_assert!(a <= c);
        }
    }

    #[test]
    fn covered_by_is_reflexive_and_respects_nulls(
        t in tuple_strategy(3),
        u in tuple_strategy(3),
    ) {
        let at = DatabaseAtom::new(RelId(0), t.clone());
        let au = DatabaseAtom::new(RelId(0), u.clone());
        // reflexive
        prop_assert!(at.covered_by(&at));
        // a null-free atom is covered only by itself
        if !t.has_null() && at.covered_by(&au) {
            prop_assert_eq!(&t, &u);
        }
        // covering agrees on non-null positions
        if at.covered_by(&au) {
            for (i, val) in t.values().iter().enumerate() {
                if !val.is_null() {
                    prop_assert_eq!(val, u.get(i));
                }
            }
        }
    }

    #[test]
    fn leq_information_is_a_partial_order(
        t in tuple_strategy(2),
        u in tuple_strategy(2),
        w in tuple_strategy(2),
    ) {
        prop_assert!(t.leq_information(&t));
        if t.leq_information(&u) && u.leq_information(&t) {
            prop_assert_eq!(&t, &u);
        }
        if t.leq_information(&u) && u.leq_information(&w) {
            prop_assert!(t.leq_information(&w));
        }
    }

    #[test]
    fn delta_algebra(
        d1 in instance_strategy(schema()),
        d2 in instance_strategy(schema()),
    ) {
        let dl = delta(&d1, &d2).unwrap();
        // Δ(D,D) = ∅
        prop_assert!(delta(&d1, &d1).unwrap().is_empty());
        // symmetry as sets
        let rl = delta(&d2, &d1).unwrap();
        prop_assert_eq!(dl.removed.clone(), rl.inserted.clone());
        prop_assert_eq!(dl.inserted.clone(), rl.removed.clone());
        // applying the delta to d1 yields d2
        let mut applied = d1.clone();
        applied.apply(dl.inserted.iter().cloned(), dl.removed.iter().cloned());
        prop_assert_eq!(applied, d2.clone());
        // delta is empty iff equal
        prop_assert_eq!(dl.is_empty(), d1 == d2);
    }

    #[test]
    fn projection_composes(t in tuple_strategy(4)) {
        // projecting twice = projecting the composition
        let first = t.project(&[0, 2, 3]);
        let second = first.project(&[1, 2]);
        prop_assert_eq!(second, t.project(&[2, 3]));
    }
}
