//! Property suite for the relational substrate: value ordering, tuple
//! covering, symmetric-difference algebra, and index maintenance — driven
//! by the workspace's own deterministic [`XorShift`] generator (no
//! external property-testing crates in this no-network workspace).

use cqa_relational::testing::{random_instance, DomainSpec, XorShift};
use cqa_relational::{delta, DatabaseAtom, Instance, RelId, Schema, Tuple, Value};
use std::sync::Arc;

const CASES: u64 = 256;

fn value(rng: &mut XorShift) -> Value {
    match rng.below(3) {
        0 => Value::Null,
        1 => Value::Int(rng.below(9) as i64 - 4),
        _ => Value::str(format!("{}", (b'a' + rng.below(3) as u8) as char)),
    }
}

fn tuple(rng: &mut XorShift, arity: usize) -> Tuple {
    Tuple::new((0..arity).map(|_| value(rng)))
}

fn schema() -> Arc<Schema> {
    Schema::builder()
        .relation("P", ["a", "b"])
        .relation("Q", ["x"])
        .finish()
        .unwrap()
        .into_shared()
}

fn instance(rng: &mut XorShift, sc: &Arc<Schema>) -> Instance {
    let mut d = Instance::empty(sc.clone());
    for _ in 0..rng.below(5) {
        d.insert(RelId(0), tuple(rng, 2)).unwrap();
    }
    for _ in 0..rng.below(5) {
        d.insert(RelId(1), tuple(rng, 1)).unwrap();
    }
    d
}

#[test]
fn value_order_is_total_and_antisymmetric() {
    let mut rng = XorShift::new(101);
    for _ in 0..CASES {
        let (a, b, c) = (value(&mut rng), value(&mut rng), value(&mut rng));
        assert!(a <= b || b <= a, "total: {a:?} {b:?}");
        if a <= b && b <= a {
            assert_eq!(a, b);
        }
        if a <= b && b <= c {
            assert!(a <= c, "transitive: {a:?} {b:?} {c:?}");
        }
    }
}

#[test]
fn covered_by_is_reflexive_and_respects_nulls() {
    let mut rng = XorShift::new(102);
    for _ in 0..CASES {
        let t = tuple(&mut rng, 3);
        let u = tuple(&mut rng, 3);
        let at = DatabaseAtom::new(RelId(0), t.clone());
        let au = DatabaseAtom::new(RelId(0), u.clone());
        assert!(at.covered_by(&at));
        if !t.has_null() && at.covered_by(&au) {
            assert_eq!(t, u);
        }
        if at.covered_by(&au) {
            for (i, val) in t.values().iter().enumerate() {
                if !val.is_null() {
                    assert_eq!(val, u.get(i));
                }
            }
        }
    }
}

#[test]
fn leq_information_is_a_partial_order() {
    let mut rng = XorShift::new(103);
    for _ in 0..CASES {
        let t = tuple(&mut rng, 2);
        let u = tuple(&mut rng, 2);
        let w = tuple(&mut rng, 2);
        assert!(t.leq_information(&t));
        if t.leq_information(&u) && u.leq_information(&t) {
            assert_eq!(t, u);
        }
        if t.leq_information(&u) && u.leq_information(&w) {
            assert!(t.leq_information(&w));
        }
    }
}

#[test]
fn delta_algebra() {
    let sc = schema();
    let mut rng = XorShift::new(104);
    for _ in 0..CASES {
        let d1 = instance(&mut rng, &sc);
        let d2 = instance(&mut rng, &sc);
        let dl = delta(&d1, &d2).unwrap();
        // Δ(D,D) = ∅
        assert!(delta(&d1, &d1).unwrap().is_empty());
        // symmetry as sets
        let rl = delta(&d2, &d1).unwrap();
        assert_eq!(dl.removed, rl.inserted);
        assert_eq!(dl.inserted, rl.removed);
        // applying the delta to d1 yields d2 — both via `apply` and via the
        // index-maintaining `apply_delta`/`revert_delta` pair
        let mut applied = d1.clone();
        applied.apply(dl.inserted.iter().cloned(), dl.removed.iter().cloned());
        assert_eq!(applied, d2);
        let mut roundtrip = d1.clone();
        roundtrip.apply_delta(&dl);
        assert_eq!(roundtrip, d2);
        roundtrip.revert_delta(&dl);
        assert_eq!(roundtrip, d1);
        // delta is empty iff equal
        assert_eq!(dl.is_empty(), d1 == d2);
    }
}

#[test]
fn projection_composes() {
    let mut rng = XorShift::new(105);
    for _ in 0..CASES {
        let t = tuple(&mut rng, 4);
        let first = t.project(&[0, 2, 3]);
        let second = first.project(&[1, 2]);
        assert_eq!(second, t.project(&[2, 3]));
    }
}

/// Index state stays consistent with the relation contents across random
/// insert/remove sequences, with indexes registered at random points —
/// the index-maintenance half of the tentpole's property obligations.
#[test]
fn index_state_consistent_across_mutation_sequences() {
    let sc = schema();
    let spec = DomainSpec {
        constants: 3,
        null_percent: 20,
    };
    for seed in 0..64u64 {
        let mut rng = XorShift::new(seed * 7 + 1);
        let mut d = random_instance(&sc, seed, 4, &spec);
        // Register some indexes up front, leave others for mid-sequence.
        let p = RelId(0);
        let q = RelId(1);
        let _ = d.index_on(p, 0);
        for step in 0..40 {
            // Random mutation.
            let rel = if rng.chance(1, 2) { p } else { q };
            let arity = sc.relation(rel).arity();
            let t = tuple(&mut rng, arity);
            if rng.chance(1, 2) {
                let _ = d.insert(rel, t).unwrap();
            } else {
                // Remove either the drawn tuple or an existing one.
                let existing = d.relation(rel).iter().next().cloned();
                match (rng.chance(1, 2), existing) {
                    (true, Some(e)) => {
                        d.remove(rel, &e);
                    }
                    _ => {
                        d.remove(rel, &t);
                    }
                }
            }
            if step == 20 {
                let _ = d.index_on(p, 1); // late registration
            }
            // Every registered index must agree with a fresh scan.
            for rel in sc.rel_ids() {
                for col in d.indexed_columns(rel) {
                    let ix = d.index_on(rel, col as usize);
                    assert_eq!(ix.len(), d.relation(rel).len(), "seed {seed} step {step}");
                    for t in d.relation(rel) {
                        assert!(
                            ix.probe(t.get(col as usize)).contains(t),
                            "seed {seed} step {step}: {t} missing from index {rel}[{col}]"
                        );
                    }
                }
            }
        }
    }
}

/// Interned value equality, ordering and hashing agree with the obvious
/// owned-string oracle — across duplicated, prefix-sharing and
/// length-varied strings, in every interning order.
#[test]
fn interned_values_match_string_oracle() {
    use std::cmp::Ordering;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    /// The naive representation the interner replaced.
    #[derive(PartialEq, Eq, PartialOrd, Ord)]
    enum Oracle {
        Null,
        Int(i64),
        Str(String),
    }

    fn oracle_of(v: &Value) -> Oracle {
        match v {
            Value::Null => Oracle::Null,
            Value::Int(i) => Oracle::Int(*i),
            Value::Sym(sym) => Oracle::Str(sym.as_str().to_string()),
        }
    }

    let mut rng = XorShift::new(701);
    let mut pool: Vec<Value> = vec![Value::Null, Value::Int(0), Value::Int(-3)];
    for _ in 0..200 {
        // Mix short names, shared prefixes and long payloads.
        let text = match rng.below(4) {
            0 => format!("k{}", rng.below(12)),
            1 => format!("shared-prefix-{}", rng.below(12)),
            2 => "long-".repeat(1 + rng.below(40)),
            _ => format!("{}", rng.next_u64()),
        };
        pool.push(Value::str(text));
        if rng.chance(1, 4) {
            pool.push(Value::Int(rng.below(100) as i64 - 50));
        }
    }
    for _ in 0..4096 {
        let a = pool[rng.below(pool.len())];
        let b = pool[rng.below(pool.len())];
        let (oa, ob) = (oracle_of(&a), oracle_of(&b));
        assert_eq!(a == b, oa == ob, "{a} vs {b}");
        assert_eq!(a.cmp(&b), oa.cmp(&ob), "{a} vs {b}");
        // Hash is consistent with equality (ids are canonical).
        if a == b {
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            a.hash(&mut ha);
            b.hash(&mut hb);
            assert_eq!(ha.finish(), hb.finish(), "{a}");
        }
        if a.cmp(&b) == Ordering::Equal {
            assert_eq!(a, b, "Ord consistent with Eq: {a} vs {b}");
        }
    }
}

/// Composite-index probes return exactly the naive filter result — for
/// every key present and for random absent keys — across random mutation
/// sequences with column sets registered before and during the sequence,
/// including a full-width set that exercises the spilled key encoding.
#[test]
fn composite_probes_match_naive_filter_across_mutations() {
    let sc = Schema::builder()
        .relation("W", ["a", "b", "c", "d", "e"])
        .finish()
        .unwrap()
        .into_shared();
    let w = RelId(0);
    let col_sets: [&[usize]; 4] = [&[0, 1], &[1, 3], &[2, 3, 4], &[0, 1, 2, 3, 4]];
    for seed in 0..48u64 {
        let mut rng = XorShift::new(seed * 11 + 3);
        let mut d = Instance::empty(sc.clone());
        let _ = d.index_on_cols(w, col_sets[0]);
        let _ = d.index_on_cols(w, col_sets[3]); // 5 cols: spilled keys
        for step in 0..30 {
            let t = tuple(&mut rng, 5);
            if rng.chance(2, 3) {
                d.insert(w, t).unwrap();
            } else {
                let existing = d.relation(w).iter().next().cloned();
                match (rng.chance(1, 2), existing) {
                    (true, Some(e)) => {
                        d.remove(w, &e);
                    }
                    _ => {
                        d.remove(w, &t);
                    }
                }
            }
            if step == 15 {
                let _ = d.index_on_cols(w, col_sets[1]);
                let _ = d.index_on_cols(w, col_sets[2]);
            }
            for cols in d.indexed_column_sets(w) {
                let cols_usize: Vec<usize> = cols.iter().map(|&c| c as usize).collect();
                let ix = d.index_on_cols(w, &cols_usize);
                assert_eq!(ix.len(), d.relation(w).len(), "seed {seed} step {step}");
                // Present keys: probe result equals the naive filter.
                for t in d.relation(w) {
                    let key: Vec<Value> = cols.iter().map(|&c| *t.get(c as usize)).collect();
                    let probed: Vec<&Tuple> = ix.probe_values(&key).iter().collect();
                    let naive: Vec<&Tuple> = d
                        .relation(w)
                        .iter()
                        .filter(|u| cols.iter().zip(&key).all(|(&c, k)| u.get(c as usize) == k))
                        .collect();
                    assert_eq!(probed, naive, "seed {seed} step {step} cols {cols:?}");
                }
                // Random (mostly absent) keys agree too.
                let key: Vec<Value> = cols.iter().map(|_| value(&mut rng)).collect();
                let probed: Vec<&Tuple> = ix.probe_values(&key).iter().collect();
                let naive: Vec<&Tuple> = d
                    .relation(w)
                    .iter()
                    .filter(|u| cols.iter().zip(&key).all(|(&c, k)| u.get(c as usize) == k))
                    .collect();
                assert_eq!(probed, naive, "seed {seed} step {step} cols {cols:?}");
            }
        }
    }
}

/// Forked instances (the repair engine's branch step) never see each
/// other's mutations, in either relation contents or index state.
#[test]
fn forks_are_isolated() {
    let sc = schema();
    let spec = DomainSpec::default();
    for seed in 0..32u64 {
        let mut rng = XorShift::new(seed + 900);
        let base = random_instance(&sc, seed, 5, &spec);
        let _ = base.index_on(RelId(0), 0);
        let snapshot = base.clone();
        let mut fork = base.clone();
        for _ in 0..10 {
            let t = tuple(&mut rng, 2);
            if rng.chance(1, 2) {
                fork.insert(RelId(0), t).unwrap();
            } else {
                fork.remove(RelId(0), &t);
            }
        }
        assert_eq!(base, snapshot, "seed {seed}: fork mutated its parent");
        let ix = base.index_on(RelId(0), 0);
        assert_eq!(ix.len(), base.relation(RelId(0)).len());
    }
}
