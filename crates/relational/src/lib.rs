#![warn(missing_docs)]

//! # cqa-relational
//!
//! Relational substrate for the *nullcqa* workspace: domain values including
//! the SQL-style `null`, relation schemas, tuples, relations, database
//! instances, active domains and symmetric differences (Δ).
//!
//! This crate corresponds to the preliminaries of Bravo & Bertossi,
//! *Semantically Correct Query Answers in the Presence of Null Values*
//! (EDBT 2006), Section 2: a fixed relational schema `Σ = (U, R, B)` where
//! the possibly infinite domain `U` contains the distinguished constant
//! `null`, and a database instance is a finite set of ground atoms.
//!
//! Design notes:
//! * A single `null` constant is used, as in commercial DBMSs (Section 3 of
//!   the paper); there are no labelled nulls. The unique-names assumption is
//!   *not* applied to `null` by higher layers except where the paper demands
//!   treating it "as any other constant" (Definition 4).
//! * String constants are globally interned ([`symbol`]): `Value` is `Copy`
//!   and value equality/hashing — the operations the index probes and join
//!   pins live on — are integer comparisons, independent of string length.
//! * Relations are **sets** of tuples (the paper sets aside SQL's bag
//!   semantics, Example 7).
//! * Ordered containers (`BTreeSet`/`BTreeMap`) are used throughout so that
//!   enumeration order — and therefore repair enumeration, program grounding
//!   and test output — is deterministic.

pub mod atom;
pub mod cancel;
pub mod diff;
pub mod display;
pub mod error;
pub mod index;
pub mod instance;
pub mod schema;
pub mod symbol;
pub mod testing;
pub mod tuple;
pub mod value;

pub use atom::DatabaseAtom;
pub use cancel::{CancelToken, Cancelled};
pub use diff::{delta, Delta, InstanceDelta};
pub use error::RelationalError;
pub use index::{ColsKey, ColumnIndex, CompositeIndex};
pub use instance::{Instance, Relation};
pub use schema::{RelId, RelationSchema, Schema, SchemaBuilder};
pub use symbol::Symbol;
pub use tuple::Tuple;
pub use value::Value;

/// Convenience constructor for a string [`Value`].
pub fn s(v: &str) -> Value {
    Value::str(v)
}

/// Convenience constructor for an integer [`Value`].
pub fn i(v: i64) -> Value {
    Value::Int(v)
}

/// Convenience constructor for the `null` [`Value`].
pub fn null() -> Value {
    Value::Null
}
