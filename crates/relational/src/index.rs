//! Secondary hash indexes over relation columns — single-column and
//! composite (column-set).
//!
//! A [`ColumnIndex`] maps the value at one column of a relation to the
//! (ordered) set of tuples holding that value — `R.c → {t ∈ R | t[c] = v}`.
//! A [`CompositeIndex`] generalises this to a *set* of columns with a
//! packed key ([`ColsKey`]), so a probe determined on several attributes —
//! a multi-column FD/key, a composite foreign key, a join pinned on two
//! variables — is one exact hash lookup instead of a best-single-column
//! bucket plus residual filtering. Since [`Value`] is interned and `Copy`,
//! hashing and comparing a key is a few integer operations regardless of
//! string lengths.
//!
//! Indexes are built lazily on first request ([`Instance::index_on`],
//! [`Instance::index_on_cols`]) and maintained incrementally on every
//! subsequent insert/remove, so constraint checking can replace full
//! relation scans with O(1) hash probes while mutating search code (the
//! repair engine) pays only O(#registered indexes of the touched relation)
//! per change.
//!
//! Design notes:
//!
//! * **Derived data.** Index state never affects instance *identity*:
//!   `Instance::eq` compares schemas and tuple sets only. Two instances
//!   with the same atoms but different registered indexes are equal.
//! * **Cheap forks.** The store holds `Arc`s to per-column(-set) maps and
//!   the instance holds `Arc`s to per-relation tuple sets, so cloning an
//!   instance is a handful of reference-count bumps; copy-on-write kicks
//!   in at the first mutation of a fork (`Arc::make_mut`).
//! * **Determinism.** Probe results are `BTreeSet<Tuple>`, so iterating a
//!   probe result is in the same deterministic order as scanning the
//!   relation — swapping a scan for a probe never changes enumeration
//!   order of matches.
//! * **Snapshot semantics.** [`Instance::index_on`] returns an
//!   `Arc`-backed snapshot. It is detached from future mutations of the
//!   instance: re-fetch after mutating (probing a stale snapshot yields
//!   the tuples of the instance *at fetch time*).
//! * **Key encoding.** [`ColsKey`] stores up to [`INLINE_KEY_COLS`] values
//!   inline (`Copy` array, no allocation — the SmallVec idea in plain std)
//!   and spills wider keys to a boxed slice. Equality/hash/order are on
//!   the logical value sequence, so inline and spilled keys of the same
//!   values are interchangeable.

use crate::instance::Relation;
use crate::schema::RelId;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::{BTreeSet, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, RwLock};

/// A hash index over one column of one relation: value → tuple set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ColumnIndex {
    map: HashMap<Value, BTreeSet<Tuple>>,
}

/// An empty, shared tuple set returned for probes that miss.
fn empty_set() -> &'static BTreeSet<Tuple> {
    static EMPTY: std::sync::OnceLock<BTreeSet<Tuple>> = std::sync::OnceLock::new();
    EMPTY.get_or_init(BTreeSet::new)
}

impl ColumnIndex {
    /// Build the index for `col` over an existing relation extension.
    pub(crate) fn build(col: usize, rel: &Relation) -> Self {
        let mut map: HashMap<Value, BTreeSet<Tuple>> = HashMap::new();
        for t in rel {
            map.entry(*t.get(col)).or_default().insert(t.clone());
        }
        ColumnIndex { map }
    }

    pub(crate) fn insert(&mut self, col: usize, t: &Tuple) {
        self.map.entry(*t.get(col)).or_default().insert(t.clone());
    }

    pub(crate) fn remove(&mut self, col: usize, t: &Tuple) {
        if let Some(set) = self.map.get_mut(t.get(col)) {
            set.remove(t);
            if set.is_empty() {
                self.map.remove(t.get(col));
            }
        }
    }

    /// The tuples whose indexed column holds `value`, in tuple order.
    pub fn probe(&self, value: &Value) -> &BTreeSet<Tuple> {
        self.map.get(value).unwrap_or_else(|| empty_set())
    }

    /// Number of tuples matching `value` (0 on a miss).
    pub fn selectivity(&self, value: &Value) -> usize {
        self.map.get(value).map_or(0, BTreeSet::len)
    }

    /// Number of distinct values in the indexed column.
    pub fn distinct_values(&self) -> usize {
        self.map.len()
    }

    /// Total tuples indexed (for consistency checks in tests).
    pub fn len(&self) -> usize {
        self.map.values().map(BTreeSet::len).sum()
    }

    /// `true` iff no tuples are indexed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Number of key values a [`ColsKey`] stores inline before spilling to the
/// heap. Covers every composite key and FD of the paper's examples and the
/// generated workloads.
pub const INLINE_KEY_COLS: usize = 4;

#[derive(Debug, Clone)]
enum KeyRepr {
    /// Up to [`INLINE_KEY_COLS`] values in a `Copy` array (padding beyond
    /// `len` is `Value::Null` and not part of the logical key).
    Inline {
        len: u8,
        vals: [Value; INLINE_KEY_COLS],
    },
    /// Wider keys, boxed.
    Spilled(Box<[Value]>),
}

/// A packed composite-index key: the values of one tuple at an ordered
/// column set. Equality, hashing and ordering are on the logical value
/// sequence — with interned values, all integer work.
#[derive(Debug, Clone)]
pub struct ColsKey(KeyRepr);

impl ColsKey {
    /// Pack a key from a value sequence (in index column order).
    pub fn new(values: &[Value]) -> ColsKey {
        if values.len() <= INLINE_KEY_COLS {
            let mut vals = [Value::Null; INLINE_KEY_COLS];
            vals[..values.len()].copy_from_slice(values);
            ColsKey(KeyRepr::Inline {
                len: values.len() as u8,
                vals,
            })
        } else {
            ColsKey(KeyRepr::Spilled(values.into()))
        }
    }

    /// Pack the key of `tuple` at `cols` (the index's canonical,
    /// ascending column order).
    pub fn of_tuple(tuple: &Tuple, cols: &[u32]) -> ColsKey {
        if cols.len() <= INLINE_KEY_COLS {
            let mut vals = [Value::Null; INLINE_KEY_COLS];
            for (slot, &c) in cols.iter().enumerate() {
                vals[slot] = *tuple.get(c as usize);
            }
            ColsKey(KeyRepr::Inline {
                len: cols.len() as u8,
                vals,
            })
        } else {
            ColsKey(KeyRepr::Spilled(
                cols.iter().map(|&c| *tuple.get(c as usize)).collect(),
            ))
        }
    }

    /// The key values, in index column order.
    pub fn values(&self) -> &[Value] {
        match &self.0 {
            KeyRepr::Inline { len, vals } => &vals[..*len as usize],
            KeyRepr::Spilled(vals) => vals,
        }
    }
}

impl PartialEq for ColsKey {
    fn eq(&self, other: &Self) -> bool {
        self.values() == other.values()
    }
}

impl Eq for ColsKey {}

impl Hash for ColsKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.values().hash(state);
    }
}

impl PartialOrd for ColsKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ColsKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.values().cmp(other.values())
    }
}

/// A hash index over a *set* of columns of one relation:
/// packed key → tuple set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompositeIndex {
    /// Indexed columns, strictly ascending (the canonical order probes
    /// must supply values in).
    cols: Box<[u32]>,
    map: HashMap<ColsKey, BTreeSet<Tuple>>,
}

impl CompositeIndex {
    /// Build the index for `cols` (ascending) over a relation extension.
    pub(crate) fn build(cols: Box<[u32]>, rel: &Relation) -> Self {
        let mut map: HashMap<ColsKey, BTreeSet<Tuple>> = HashMap::new();
        for t in rel {
            map.entry(ColsKey::of_tuple(t, &cols))
                .or_default()
                .insert(t.clone());
        }
        CompositeIndex { cols, map }
    }

    pub(crate) fn insert(&mut self, t: &Tuple) {
        self.map
            .entry(ColsKey::of_tuple(t, &self.cols))
            .or_default()
            .insert(t.clone());
    }

    pub(crate) fn remove(&mut self, t: &Tuple) {
        let key = ColsKey::of_tuple(t, &self.cols);
        if let Some(set) = self.map.get_mut(&key) {
            set.remove(t);
            if set.is_empty() {
                self.map.remove(&key);
            }
        }
    }

    /// The indexed columns, ascending.
    pub fn cols(&self) -> &[u32] {
        &self.cols
    }

    /// The tuples matching `key` exactly on every indexed column, in
    /// tuple order.
    pub fn probe(&self, key: &ColsKey) -> &BTreeSet<Tuple> {
        self.map.get(key).unwrap_or_else(|| empty_set())
    }

    /// Probe with unpacked values (in [`CompositeIndex::cols`] order).
    pub fn probe_values(&self, values: &[Value]) -> &BTreeSet<Tuple> {
        debug_assert_eq!(values.len(), self.cols.len());
        self.probe(&ColsKey::new(values))
    }

    /// Number of tuples matching `key` (0 on a miss).
    pub fn selectivity(&self, key: &ColsKey) -> usize {
        self.map.get(key).map_or(0, BTreeSet::len)
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Total tuples indexed (for consistency checks in tests).
    pub fn len(&self) -> usize {
        self.map.values().map(BTreeSet::len).sum()
    }

    /// `true` iff no tuples are indexed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// The registered secondary indexes of one [`crate::Instance`].
///
/// Interior mutability (`RwLock`) lets read-only consistency checks build
/// indexes lazily through `&Instance`; the lock is uncontended in the
/// single-threaded search paths and keeps `Instance: Send + Sync`.
#[derive(Debug, Default)]
pub(crate) struct IndexStore {
    by_col: RwLock<HashMap<(u32, u32), Arc<ColumnIndex>>>,
    /// Composite indexes, keyed by relation with the (few) registered
    /// column sets scanned linearly — probes look an index up without
    /// allocating a key.
    by_cols: RwLock<HashMap<u32, RelCompositeIndexes>>,
}

/// The registered composite indexes of one relation, by column set.
type RelCompositeIndexes = Vec<(Box<[u32]>, Arc<CompositeIndex>)>;

impl IndexStore {
    /// Fetch (building if absent) the index for `(rel, col)`.
    pub(crate) fn get_or_build(
        &self,
        rel: RelId,
        col: usize,
        relation: &Relation,
    ) -> Arc<ColumnIndex> {
        let key = (rel.0, col as u32);
        if let Some(ix) = self.by_col.read().expect("index lock").get(&key) {
            return ix.clone();
        }
        let built = Arc::new(ColumnIndex::build(col, relation));
        let mut w = self.by_col.write().expect("index lock");
        w.entry(key).or_insert_with(|| built.clone());
        w[&key].clone()
    }

    /// Fetch (building if absent) the composite index for `(rel, cols)`;
    /// `cols` must be strictly ascending.
    pub(crate) fn get_or_build_cols(
        &self,
        rel: RelId,
        cols: &[u32],
        relation: &Relation,
    ) -> Arc<CompositeIndex> {
        debug_assert!(cols.windows(2).all(|w| w[0] < w[1]), "cols must ascend");
        if let Some(list) = self.by_cols.read().expect("index lock").get(&rel.0) {
            if let Some((_, ix)) = list.iter().find(|(cs, _)| &**cs == cols) {
                return ix.clone();
            }
        }
        let mut w = self.by_cols.write().expect("index lock");
        let list = w.entry(rel.0).or_default();
        if let Some((_, ix)) = list.iter().find(|(cs, _)| &**cs == cols) {
            return ix.clone();
        }
        let built = Arc::new(CompositeIndex::build(Box::from(cols), relation));
        list.push((Box::from(cols), built.clone()));
        built
    }

    /// Registered column list for a relation (for maintenance and tests).
    pub(crate) fn registered_cols(&self, rel: RelId) -> Vec<u32> {
        let mut cols: Vec<u32> = self
            .by_col
            .read()
            .expect("index lock")
            .keys()
            .filter(|(r, _)| *r == rel.0)
            .map(|&(_, c)| c)
            .collect();
        cols.sort_unstable();
        cols
    }

    /// Registered composite column sets for a relation (tests).
    pub(crate) fn registered_col_sets(&self, rel: RelId) -> Vec<Vec<u32>> {
        let mut sets: Vec<Vec<u32>> = self
            .by_cols
            .read()
            .expect("index lock")
            .get(&rel.0)
            .map(|list| list.iter().map(|(cs, _)| cs.to_vec()).collect())
            .unwrap_or_default();
        sets.sort();
        sets
    }

    /// Maintain all indexes of `rel` after `t` was inserted.
    pub(crate) fn note_insert(&mut self, rel: RelId, t: &Tuple) {
        let by_col = self.by_col.get_mut().expect("index lock");
        for ((r, col), ix) in by_col.iter_mut() {
            if *r == rel.0 {
                Arc::make_mut(ix).insert(*col as usize, t);
            }
        }
        if let Some(list) = self.by_cols.get_mut().expect("index lock").get_mut(&rel.0) {
            for (_, ix) in list.iter_mut() {
                Arc::make_mut(ix).insert(t);
            }
        }
    }

    /// Maintain all indexes of `rel` after `t` was removed.
    pub(crate) fn note_remove(&mut self, rel: RelId, t: &Tuple) {
        let by_col = self.by_col.get_mut().expect("index lock");
        for ((r, col), ix) in by_col.iter_mut() {
            if *r == rel.0 {
                Arc::make_mut(ix).remove(*col as usize, t);
            }
        }
        if let Some(list) = self.by_cols.get_mut().expect("index lock").get_mut(&rel.0) {
            for (_, ix) in list.iter_mut() {
                Arc::make_mut(ix).remove(t);
            }
        }
    }
}

impl Clone for IndexStore {
    fn clone(&self) -> Self {
        IndexStore {
            by_col: RwLock::new(self.by_col.read().expect("index lock").clone()),
            by_cols: RwLock::new(self.by_cols.read().expect("index lock").clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{i, null, s, Instance, Schema};

    fn schema() -> std::sync::Arc<Schema> {
        Schema::builder()
            .relation("P", ["a", "b"])
            .finish()
            .unwrap()
            .into_shared()
    }

    fn schema3() -> std::sync::Arc<Schema> {
        Schema::builder()
            .relation("T", ["a", "b", "c"])
            .finish()
            .unwrap()
            .into_shared()
    }

    #[test]
    fn probe_finds_matching_tuples_only() {
        let mut d = Instance::empty(schema());
        d.insert_named("P", [s("x"), i(1)]).unwrap();
        d.insert_named("P", [s("x"), i(2)]).unwrap();
        d.insert_named("P", [s("y"), i(3)]).unwrap();
        let p = d.schema().rel_id("P").unwrap();
        let ix = d.index_on(p, 0);
        assert_eq!(ix.probe(&s("x")).len(), 2);
        assert_eq!(ix.probe(&s("y")).len(), 1);
        assert!(ix.probe(&s("z")).is_empty());
        assert_eq!(ix.distinct_values(), 2);
        assert_eq!(ix.len(), 3);
    }

    #[test]
    fn index_maintained_across_insert_and_remove() {
        let mut d = Instance::empty(schema());
        let p = d.schema().rel_id("P").unwrap();
        let _ = d.index_on(p, 1); // register before any data exists
        d.insert_named("P", [s("x"), null()]).unwrap();
        d.insert_named("P", [s("y"), null()]).unwrap();
        assert_eq!(d.index_on(p, 1).probe(&null()).len(), 2);
        let t = Tuple::new(vec![s("x"), null()]);
        d.remove(p, &t);
        assert_eq!(d.index_on(p, 1).probe(&null()).len(), 1);
        d.remove(p, &Tuple::new(vec![s("y"), null()]));
        assert!(d.index_on(p, 1).probe(&null()).is_empty());
    }

    #[test]
    fn snapshots_are_detached_from_later_mutations() {
        let mut d = Instance::empty(schema());
        d.insert_named("P", [s("x"), i(1)]).unwrap();
        let p = d.schema().rel_id("P").unwrap();
        let snapshot = d.index_on(p, 0);
        d.insert_named("P", [s("x"), i(2)]).unwrap();
        assert_eq!(snapshot.probe(&s("x")).len(), 1); // fetch-time view
        assert_eq!(d.index_on(p, 0).probe(&s("x")).len(), 2);
    }

    #[test]
    fn forked_instances_maintain_independent_indexes() {
        let mut d = Instance::empty(schema());
        d.insert_named("P", [s("x"), i(1)]).unwrap();
        let p = d.schema().rel_id("P").unwrap();
        let _ = d.index_on(p, 0);
        let mut fork = d.clone();
        fork.insert_named("P", [s("x"), i(2)]).unwrap();
        assert_eq!(d.index_on(p, 0).probe(&s("x")).len(), 1);
        assert_eq!(fork.index_on(p, 0).probe(&s("x")).len(), 2);
    }

    #[test]
    fn index_state_does_not_affect_equality() {
        let mut a = Instance::empty(schema());
        a.insert_named("P", [s("x"), i(1)]).unwrap();
        let b = a.clone();
        let p = a.schema().rel_id("P").unwrap();
        let _ = a.index_on(p, 0);
        let _ = a.index_on_cols(p, &[0, 1]);
        assert_eq!(a, b);
    }

    #[test]
    fn cols_key_inline_and_spilled_agree() {
        let small = [s("a"), i(1), null()];
        let wide: Vec<Value> = (0..7).map(i).collect();
        assert_eq!(ColsKey::new(&small), ColsKey::new(&small));
        assert_eq!(ColsKey::new(&small).values(), &small);
        assert_eq!(ColsKey::new(&wide).values(), wide.as_slice());
        // Prefix keys of different lengths are distinct.
        assert_ne!(ColsKey::new(&small), ColsKey::new(&small[..2]));
        // Boundary: exactly INLINE_KEY_COLS stays inline-equal to itself.
        let edge: Vec<Value> = (0..INLINE_KEY_COLS as i64).map(i).collect();
        assert_eq!(ColsKey::new(&edge), ColsKey::new(&edge));
        assert_eq!(ColsKey::new(&edge).values(), edge.as_slice());
    }

    #[test]
    fn composite_probe_matches_all_columns_exactly() {
        let mut d = Instance::empty(schema3());
        d.insert_named("T", [s("x"), i(1), s("p")]).unwrap();
        d.insert_named("T", [s("x"), i(1), s("q")]).unwrap();
        d.insert_named("T", [s("x"), i(2), s("p")]).unwrap();
        d.insert_named("T", [s("y"), i(1), s("p")]).unwrap();
        let t = d.schema().rel_id("T").unwrap();
        let ix = d.index_on_cols(t, &[0, 1]);
        assert_eq!(ix.cols(), &[0, 1]);
        assert_eq!(ix.probe_values(&[s("x"), i(1)]).len(), 2);
        assert_eq!(ix.probe_values(&[s("x"), i(2)]).len(), 1);
        assert!(ix.probe_values(&[s("y"), i(2)]).is_empty());
        assert_eq!(ix.distinct_keys(), 3);
        assert_eq!(ix.len(), 4);
    }

    #[test]
    fn composite_index_maintained_across_mutations() {
        let mut d = Instance::empty(schema3());
        let t = d.schema().rel_id("T").unwrap();
        let _ = d.index_on_cols(t, &[0, 2]); // register before data
        d.insert_named("T", [s("x"), i(1), null()]).unwrap();
        d.insert_named("T", [s("x"), i(2), null()]).unwrap();
        assert_eq!(
            d.index_on_cols(t, &[0, 2])
                .probe_values(&[s("x"), null()])
                .len(),
            2
        );
        d.remove(t, &Tuple::new(vec![s("x"), i(1), null()]));
        assert_eq!(
            d.index_on_cols(t, &[0, 2])
                .probe_values(&[s("x"), null()])
                .len(),
            1
        );
    }

    #[test]
    fn index_on_cols_canonicalises_column_order() {
        let mut d = Instance::empty(schema3());
        d.insert_named("T", [s("x"), i(1), s("p")]).unwrap();
        let t = d.schema().rel_id("T").unwrap();
        // Unsorted and duplicated requests resolve to the same index.
        let a = d.index_on_cols(t, &[2, 0]);
        let b = d.index_on_cols(t, &[0, 2, 0]);
        assert_eq!(a.cols(), &[0, 2]);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(d.indexed_column_sets(t), vec![vec![0, 2]]);
    }

    #[test]
    fn composite_probe_equals_naive_filter() {
        let mut d = Instance::empty(schema3());
        for a in 0..4i64 {
            for b in 0..3i64 {
                d.insert_named("T", [i(a), i(b), i(a + b)]).unwrap();
            }
        }
        let t = d.schema().rel_id("T").unwrap();
        let ix = d.index_on_cols(t, &[1, 2]);
        for b in 0..4i64 {
            for c in 0..7i64 {
                let probed: Vec<&Tuple> = ix.probe_values(&[i(b), i(c)]).iter().collect();
                let naive: Vec<&Tuple> = d
                    .relation(t)
                    .iter()
                    .filter(|tp| *tp.get(1) == i(b) && *tp.get(2) == i(c))
                    .collect();
                assert_eq!(probed, naive, "b={b} c={c}");
            }
        }
    }
}
