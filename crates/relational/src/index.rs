//! Secondary hash indexes over relation columns.
//!
//! An index maps the value at one column of a relation to the (ordered) set
//! of tuples holding that value — `R.c → {t ∈ R | t[c] = v}`. Indexes are
//! built lazily on first request ([`Instance::index_on`]) and maintained
//! incrementally on every subsequent insert/remove, so constraint checking
//! can replace full relation scans with O(1) hash probes while mutating
//! search code (the repair engine) pays only O(#registered indexes of the
//! touched relation) per change.
//!
//! Design notes:
//!
//! * **Derived data.** Index state never affects instance *identity*:
//!   `Instance::eq` compares schemas and tuple sets only. Two instances
//!   with the same atoms but different registered indexes are equal.
//! * **Cheap forks.** The store holds `Arc`s to per-column maps and the
//!   instance holds `Arc`s to per-relation tuple sets, so cloning an
//!   instance is a handful of reference-count bumps; copy-on-write kicks
//!   in at the first mutation of a fork (`Arc::make_mut`).
//! * **Determinism.** Probe results are `BTreeSet<Tuple>`, so iterating a
//!   probe result is in the same deterministic order as scanning the
//!   relation — swapping a scan for a probe never changes enumeration
//!   order of matches.
//! * **Snapshot semantics.** [`Instance::index_on`] returns an
//!   `Arc`-backed snapshot. It is detached from future mutations of the
//!   instance: re-fetch after mutating (probing a stale snapshot yields
//!   the tuples of the instance *at fetch time*).

use crate::instance::Relation;
use crate::schema::RelId;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, RwLock};

/// A hash index over one column of one relation: value → tuple set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ColumnIndex {
    map: HashMap<Value, BTreeSet<Tuple>>,
}

/// An empty, shared tuple set returned for probes that miss.
fn empty_set() -> &'static BTreeSet<Tuple> {
    static EMPTY: std::sync::OnceLock<BTreeSet<Tuple>> = std::sync::OnceLock::new();
    EMPTY.get_or_init(BTreeSet::new)
}

impl ColumnIndex {
    /// Build the index for `col` over an existing relation extension.
    pub(crate) fn build(col: usize, rel: &Relation) -> Self {
        let mut map: HashMap<Value, BTreeSet<Tuple>> = HashMap::new();
        for t in rel {
            map.entry(t.get(col).clone()).or_default().insert(t.clone());
        }
        ColumnIndex { map }
    }

    pub(crate) fn insert(&mut self, col: usize, t: &Tuple) {
        self.map
            .entry(t.get(col).clone())
            .or_default()
            .insert(t.clone());
    }

    pub(crate) fn remove(&mut self, col: usize, t: &Tuple) {
        if let Some(set) = self.map.get_mut(t.get(col)) {
            set.remove(t);
            if set.is_empty() {
                self.map.remove(t.get(col));
            }
        }
    }

    /// The tuples whose indexed column holds `value`, in tuple order.
    pub fn probe(&self, value: &Value) -> &BTreeSet<Tuple> {
        self.map.get(value).unwrap_or_else(|| empty_set())
    }

    /// Number of tuples matching `value` (0 on a miss).
    pub fn selectivity(&self, value: &Value) -> usize {
        self.map.get(value).map_or(0, BTreeSet::len)
    }

    /// Number of distinct values in the indexed column.
    pub fn distinct_values(&self) -> usize {
        self.map.len()
    }

    /// Total tuples indexed (for consistency checks in tests).
    pub fn len(&self) -> usize {
        self.map.values().map(BTreeSet::len).sum()
    }

    /// `true` iff no tuples are indexed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// The registered secondary indexes of one [`crate::Instance`].
///
/// Interior mutability (`RwLock`) lets read-only consistency checks build
/// indexes lazily through `&Instance`; the lock is uncontended in the
/// single-threaded search paths and keeps `Instance: Send + Sync`.
#[derive(Debug, Default)]
pub(crate) struct IndexStore {
    by_col: RwLock<HashMap<(u32, u32), Arc<ColumnIndex>>>,
}

impl IndexStore {
    /// Fetch (building if absent) the index for `(rel, col)`.
    pub(crate) fn get_or_build(
        &self,
        rel: RelId,
        col: usize,
        relation: &Relation,
    ) -> Arc<ColumnIndex> {
        let key = (rel.0, col as u32);
        if let Some(ix) = self.by_col.read().expect("index lock").get(&key) {
            return ix.clone();
        }
        let built = Arc::new(ColumnIndex::build(col, relation));
        let mut w = self.by_col.write().expect("index lock");
        w.entry(key).or_insert_with(|| built.clone());
        w[&key].clone()
    }

    /// Registered column list for a relation (for maintenance and tests).
    pub(crate) fn registered_cols(&self, rel: RelId) -> Vec<u32> {
        let mut cols: Vec<u32> = self
            .by_col
            .read()
            .expect("index lock")
            .keys()
            .filter(|(r, _)| *r == rel.0)
            .map(|&(_, c)| c)
            .collect();
        cols.sort_unstable();
        cols
    }

    /// Maintain all indexes of `rel` after `t` was inserted.
    pub(crate) fn note_insert(&mut self, rel: RelId, t: &Tuple) {
        let by_col = self.by_col.get_mut().expect("index lock");
        for ((r, col), ix) in by_col.iter_mut() {
            if *r == rel.0 {
                Arc::make_mut(ix).insert(*col as usize, t);
            }
        }
    }

    /// Maintain all indexes of `rel` after `t` was removed.
    pub(crate) fn note_remove(&mut self, rel: RelId, t: &Tuple) {
        let by_col = self.by_col.get_mut().expect("index lock");
        for ((r, col), ix) in by_col.iter_mut() {
            if *r == rel.0 {
                Arc::make_mut(ix).remove(*col as usize, t);
            }
        }
    }
}

impl Clone for IndexStore {
    fn clone(&self) -> Self {
        IndexStore {
            by_col: RwLock::new(self.by_col.read().expect("index lock").clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{i, null, s, Instance, Schema};

    fn schema() -> std::sync::Arc<Schema> {
        Schema::builder()
            .relation("P", ["a", "b"])
            .finish()
            .unwrap()
            .into_shared()
    }

    #[test]
    fn probe_finds_matching_tuples_only() {
        let mut d = Instance::empty(schema());
        d.insert_named("P", [s("x"), i(1)]).unwrap();
        d.insert_named("P", [s("x"), i(2)]).unwrap();
        d.insert_named("P", [s("y"), i(3)]).unwrap();
        let p = d.schema().rel_id("P").unwrap();
        let ix = d.index_on(p, 0);
        assert_eq!(ix.probe(&s("x")).len(), 2);
        assert_eq!(ix.probe(&s("y")).len(), 1);
        assert!(ix.probe(&s("z")).is_empty());
        assert_eq!(ix.distinct_values(), 2);
        assert_eq!(ix.len(), 3);
    }

    #[test]
    fn index_maintained_across_insert_and_remove() {
        let mut d = Instance::empty(schema());
        let p = d.schema().rel_id("P").unwrap();
        let _ = d.index_on(p, 1); // register before any data exists
        d.insert_named("P", [s("x"), null()]).unwrap();
        d.insert_named("P", [s("y"), null()]).unwrap();
        assert_eq!(d.index_on(p, 1).probe(&null()).len(), 2);
        let t = Tuple::new(vec![s("x"), null()]);
        d.remove(p, &t);
        assert_eq!(d.index_on(p, 1).probe(&null()).len(), 1);
        d.remove(p, &Tuple::new(vec![s("y"), null()]));
        assert!(d.index_on(p, 1).probe(&null()).is_empty());
    }

    #[test]
    fn snapshots_are_detached_from_later_mutations() {
        let mut d = Instance::empty(schema());
        d.insert_named("P", [s("x"), i(1)]).unwrap();
        let p = d.schema().rel_id("P").unwrap();
        let snapshot = d.index_on(p, 0);
        d.insert_named("P", [s("x"), i(2)]).unwrap();
        assert_eq!(snapshot.probe(&s("x")).len(), 1); // fetch-time view
        assert_eq!(d.index_on(p, 0).probe(&s("x")).len(), 2);
    }

    #[test]
    fn forked_instances_maintain_independent_indexes() {
        let mut d = Instance::empty(schema());
        d.insert_named("P", [s("x"), i(1)]).unwrap();
        let p = d.schema().rel_id("P").unwrap();
        let _ = d.index_on(p, 0);
        let mut fork = d.clone();
        fork.insert_named("P", [s("x"), i(2)]).unwrap();
        assert_eq!(d.index_on(p, 0).probe(&s("x")).len(), 1);
        assert_eq!(fork.index_on(p, 0).probe(&s("x")).len(), 2);
    }

    #[test]
    fn index_state_does_not_affect_equality() {
        let mut a = Instance::empty(schema());
        a.insert_named("P", [s("x"), i(1)]).unwrap();
        let b = a.clone();
        let p = a.schema().rel_id("P").unwrap();
        let _ = a.index_on(p, 0);
        assert_eq!(a, b);
    }
}
