//! Global string interning: `Symbol` ids behind a sharded, append-only
//! table.
//!
//! Every string constant of the domain is interned exactly once for the
//! lifetime of the process and identified by a dense `u32` id. This is
//! what makes the workspace's hot paths integer-only:
//!
//! * **Equality and hashing are id operations.** `Symbol: Copy + Eq +
//!   Hash` compares and hashes the `u32`, never the characters — an index
//!   probe on an interned value costs the same whether the constant is 3
//!   or 3000 bytes long (pinned by the `value_probe` bench group).
//! * **Ordering stays lexicographic.** The repair machinery iterates
//!   `BTreeSet`s everywhere and the whole test suite pins enumeration
//!   order to string order, so `Ord` resolves and compares the underlying
//!   text — with an id fast path for the (dominant) equal case. Total
//!   order consistency with `Eq` holds because the interner never assigns
//!   two ids to one string.
//!
//!   When does a comparison still touch string content? The ordering
//!   table (pinned by the `symbol_ord` micro-benchmark):
//!
//!   | case                | cost                                    |
//!   |---------------------|-----------------------------------------|
//!   | equal ids           | one `u32` compare — no resolve, flat    |
//!   | distinct ids        | two lock-free resolves + prefix walk    |
//!
//!   Equal ids dominate B-tree *probes* (searching for a value that is
//!   present ends on the equal fast path), so membership-heavy paths pay
//!   almost nothing; B-tree *descent* and range iteration compare
//!   distinct ids and still walk shared prefixes. If enumeration order
//!   were ever relaxed, id-ordered B-trees would drop those last string
//!   touches from the search inner loops (ROADMAP "Interner-aware
//!   ordering") — until then, lexicographic order is part of the
//!   workspace's observable semantics and this is a deliberate cost.
//!
//! Layout: lookups go through `SHARD_COUNT` independently locked
//! `str → Symbol` maps (the write path is only taken the *first* time a
//! string is seen); resolution goes through a lock-free chunked table of
//! `&'static str` entries published with release stores, so `Symbol::
//! as_str` in comparison loops never touches a lock. Interned strings are
//! intentionally leaked: the table is global, append-only and lives for
//! the whole process, exactly like the symbol tables of the
//! dictionary-encoded CQA evaluators this design follows.

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{Mutex, OnceLock, RwLock};

/// An interned string constant: a dense id into the global symbol table.
///
/// `Eq`/`Hash` are id comparisons; `Ord` is lexicographic on the resolved
/// text (equal ids short-circuit to `Equal` without resolving).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// Intern `text`, returning its unique id (allocating one on first
    /// sight, O(1) lock-free-read afterwards).
    pub fn intern(text: &str) -> Symbol {
        interner().intern(text)
    }

    /// The interned text. `'static`: the table is append-only and
    /// process-lived.
    pub fn as_str(self) -> &'static str {
        interner().resolve(self)
    }

    /// The raw id (diagnostics; dense from 0 in interning order).
    pub fn id(self) -> u32 {
        self.0
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            return std::cmp::Ordering::Equal;
        }
        self.as_str().cmp(other.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Number of lookup shards (a power of two; the shard of a string is the
/// low bits of its hash).
const SHARD_COUNT: usize = 16;
/// Entries per resolution chunk.
const CHUNK_SIZE: usize = 1 << 12;
/// Maximum number of chunks (caps the table at ~16.7M symbols).
const MAX_CHUNKS: usize = 1 << 12;

/// Entries hold thin pointers to leaked `String`s (a fat `*mut str`
/// cannot be stored atomically).
type Chunk = [AtomicPtr<String>; CHUNK_SIZE];

struct Interner {
    /// `str → Symbol` lookup, sharded by string hash. Only interning of a
    /// *new* string takes a write lock.
    shards: [RwLock<HashMap<&'static str, Symbol>>; SHARD_COUNT],
    /// Append lock: serialises id allocation and chunk creation.
    append: Mutex<u32>,
    /// Resolution table: chunked array of leaked string pointers,
    /// published with release stores and read with acquire loads — no
    /// lock on the resolve path.
    chunks: Box<[AtomicPtr<Chunk>]>,
}

fn interner() -> &'static Interner {
    static GLOBAL: OnceLock<Interner> = OnceLock::new();
    GLOBAL.get_or_init(|| Interner {
        shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
        append: Mutex::new(0),
        chunks: (0..MAX_CHUNKS)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect(),
    })
}

/// Deterministic shard choice (`DefaultHasher` is keyless SipHash).
fn shard_of(text: &str) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    text.hash(&mut h);
    (h.finish() as usize) & (SHARD_COUNT - 1)
}

impl Interner {
    fn intern(&self, text: &str) -> Symbol {
        let shard = &self.shards[shard_of(text)];
        if let Some(&sym) = shard.read().expect("interner shard").get(text) {
            return sym;
        }
        let mut map = shard.write().expect("interner shard");
        if let Some(&sym) = map.get(text) {
            return sym; // raced: someone else interned it first
        }
        let leaked: &'static mut String = Box::leak(Box::new(text.to_owned()));
        let mut next = self.append.lock().expect("interner append");
        let id = *next;
        let (chunk_ix, slot) = (id as usize / CHUNK_SIZE, id as usize % CHUNK_SIZE);
        assert!(chunk_ix < MAX_CHUNKS, "symbol table full");
        let mut chunk = self.chunks[chunk_ix].load(Ordering::Acquire);
        if chunk.is_null() {
            let fresh: Box<Chunk> =
                Box::new(std::array::from_fn(
                    |_| AtomicPtr::new(std::ptr::null_mut()),
                ));
            chunk = Box::into_raw(fresh);
            self.chunks[chunk_ix].store(chunk, Ordering::Release);
        }
        // Publish the entry before the id becomes observable.
        unsafe { &(*chunk)[slot] }.store(leaked as *mut String, Ordering::Release);
        *next = id.checked_add(1).expect("symbol ids exhausted");
        drop(next);
        map.insert(leaked.as_str(), Symbol(id));
        Symbol(id)
    }

    fn resolve(&self, sym: Symbol) -> &'static str {
        let (chunk_ix, slot) = (sym.0 as usize / CHUNK_SIZE, sym.0 as usize % CHUNK_SIZE);
        let chunk = self.chunks[chunk_ix].load(Ordering::Acquire);
        assert!(!chunk.is_null(), "resolve of unknown symbol");
        let entry = unsafe { &(*chunk)[slot] }.load(Ordering::Acquire);
        assert!(!entry.is_null(), "resolve of unknown symbol");
        unsafe { (*entry).as_str() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("idempotent-check");
        let b = Symbol::intern("idempotent-check");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_eq!(a.as_str(), "idempotent-check");
    }

    #[test]
    fn distinct_strings_get_distinct_ids() {
        let a = Symbol::intern("distinct-a");
        let b = Symbol::intern("distinct-b");
        assert_ne!(a, b);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn order_is_lexicographic_not_id_order() {
        // Intern in reverse lexicographic order: ids go up while the
        // lexicographic order goes the other way.
        let z = Symbol::intern("zzz-order-check");
        let a = Symbol::intern("aaa-order-check");
        assert!(a < z);
        assert!(z > a);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn empty_and_long_strings_roundtrip() {
        let empty = Symbol::intern("");
        assert_eq!(empty.as_str(), "");
        let long = "x".repeat(10_000);
        let sym = Symbol::intern(&long);
        assert_eq!(sym.as_str(), long);
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    (0..200)
                        .map(|i| Symbol::intern(&format!("concurrent-{}", (i + t) % 100)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<Symbol>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for syms in &results {
            for s in syms {
                assert!(s.as_str().starts_with("concurrent-"));
            }
        }
        // Same string always resolves to the same id across threads.
        let again = Symbol::intern("concurrent-0");
        for syms in &results {
            for s in syms {
                if s.as_str() == "concurrent-0" {
                    assert_eq!(*s, again);
                }
            }
        }
    }
}
