//! Ground database atoms `R(c̄)`: the elements of an instance.

use crate::schema::{RelId, Schema};
use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt;

/// A ground database atom: a relation id together with a tuple.
///
/// Database atoms are the currency of the repair layer: instances are sets
/// of atoms, Δ (symmetric difference) is a set of atoms, repair decisions
/// insert or delete atoms.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DatabaseAtom {
    /// The relation this atom belongs to.
    pub rel: RelId,
    /// The atom's tuple of constants.
    pub tuple: Tuple,
}

impl DatabaseAtom {
    /// Construct an atom.
    pub fn new(rel: RelId, tuple: Tuple) -> Self {
        DatabaseAtom { rel, tuple }
    }

    /// `true` iff some attribute is null (drives the case split in the
    /// `≤_D` order, Definition 6).
    pub fn has_null(&self) -> bool {
        self.tuple.has_null()
    }

    /// 0-based positions where the tuple is **not** null. Two atoms of the
    /// same relation "agree outside nulls of `self`" iff their values match
    /// on these positions — the `Q(ā, b̄)` pattern of Definition 6(b).
    pub fn non_null_positions(&self) -> Vec<usize> {
        self.tuple
            .values()
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_null())
            .map(|(i, _)| i)
            .collect()
    }

    /// Does `other` agree with `self` on every non-null position of `self`?
    ///
    /// This implements the existential pattern of Definition 6(b): for an
    /// atom `Q(ā, null̄)` in a Δ, a covering atom is any `Q(ā, b̄)` — same
    /// relation, same values wherever `self` is non-null, anything (possibly
    /// null) at `self`'s null positions.
    pub fn covered_by(&self, other: &DatabaseAtom) -> bool {
        self.rel == other.rel
            && self.tuple.arity() == other.tuple.arity()
            && self
                .tuple
                .values()
                .iter()
                .zip(other.tuple.values())
                .all(|(a, b)| a.is_null() || a == b)
    }

    /// Render with the relation's name from `schema`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        struct D<'a>(&'a DatabaseAtom, &'a Schema);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", self.1.relation(self.0.rel).name(), self.0.tuple)
            }
        }
        D(self, schema)
    }

    /// The values of the tuple (convenience).
    pub fn values(&self) -> &[Value] {
        self.tuple.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{i, null, s, Schema};

    fn atom(rel: u32, vs: Vec<Value>) -> DatabaseAtom {
        DatabaseAtom::new(RelId(rel), Tuple::new(vs))
    }

    #[test]
    fn covered_by_matches_non_null_positions() {
        // Q(f, null) is covered by Q(f, b) and Q(f, null), not by Q(g, b).
        let q_f_null = atom(0, vec![s("f"), null()]);
        assert!(q_f_null.covered_by(&atom(0, vec![s("f"), s("b")])));
        assert!(q_f_null.covered_by(&atom(0, vec![s("f"), null()])));
        assert!(!q_f_null.covered_by(&atom(0, vec![s("g"), s("b")])));
        // different relation never covers
        assert!(!q_f_null.covered_by(&atom(1, vec![s("f"), s("b")])));
    }

    #[test]
    fn covered_by_all_null_matches_any_same_relation() {
        let all_null = atom(0, vec![null(), null()]);
        assert!(all_null.covered_by(&atom(0, vec![i(1), i(2)])));
        assert!(!all_null.covered_by(&atom(0, vec![i(1)]))); // arity differs
    }

    #[test]
    fn non_null_positions_and_has_null() {
        let a = atom(0, vec![s("a"), null(), i(3)]);
        assert!(a.has_null());
        assert_eq!(a.non_null_positions(), vec![0, 2]);
    }

    #[test]
    fn display_uses_relation_name() {
        let schema = Schema::builder()
            .relation("Course", ["code", "id"])
            .finish()
            .unwrap();
        let a = DatabaseAtom::new(RelId(0), Tuple::new(vec![s("CS27"), i(21)]));
        assert_eq!(a.display(&schema).to_string(), "Course(CS27, 21)");
    }
}
