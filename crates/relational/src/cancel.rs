//! Cooperative cancellation and deadlines — the governor every engine
//! loop in the workspace polls (ISSUE 7 tentpole, part 2).
//!
//! A [`CancelToken`] is a cheap, clonable handle over a shared atomic
//! flag plus an optional wall-clock deadline. Long-running loops —
//! repair search nodes, CDCL solver iterations, grounding fixpoint
//! rounds — poll [`CancelToken::check`] at their natural step
//! boundaries; a tripped token makes the poll return [`Cancelled`],
//! which each layer maps into its own typed error (`AspError::
//! Interrupted`, `CoreError::Interrupted`) carrying how much sound
//! partial work had completed.
//!
//! Cancellation is *cooperative*: nothing is torn down preemptively, so
//! a cancelled engine always unwinds through ordinary `Result` paths
//! with its invariants intact. Tokens form a one-level hierarchy:
//! [`CancelToken::child_with_timeout`] derives a per-operation deadline
//! token that also trips when its parent (a long-lived manual handle,
//! e.g. the facade's `cancel_handle`) is cancelled.
//!
//! The default token ([`CancelToken::never`]) carries no allocation and
//! every poll on it is a single `Option` test — engines pay for the
//! governor only when one is installed.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The unit "operation was cancelled" marker returned by
/// [`CancelToken::check`]; each layer converts it into its own typed
/// error at the boundary where partial-progress counts are known.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "operation cancelled")
    }
}

impl std::error::Error for Cancelled {}

#[derive(Debug)]
struct Inner {
    /// Manual cancellation, and the latch for an observed deadline.
    flag: AtomicBool,
    /// Wall-clock deadline, if any.
    deadline: Option<Instant>,
    /// Parent token: tripping it trips this one too.
    parent: Option<Arc<Inner>>,
}

impl Inner {
    fn tripped(&self) -> bool {
        if self.flag.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                // Latch: later polls skip the clock read.
                self.flag.store(true, Ordering::Relaxed);
                return true;
            }
        }
        if let Some(parent) = &self.parent {
            if parent.tripped() {
                self.flag.store(true, Ordering::Relaxed);
                return true;
            }
        }
        false
    }
}

/// A shared cancellation flag with an optional deadline. Clones observe
/// (and can trip) the same flag.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

impl Default for CancelToken {
    /// The never-cancelled token, same as [`CancelToken::never`].
    fn default() -> Self {
        CancelToken::never()
    }
}

impl CancelToken {
    /// A token that can never trip: polls are a single `Option` test and
    /// no allocation is made. This is what un-governed entry points pass
    /// down, so the governor is free when unused.
    pub const fn never() -> Self {
        CancelToken { inner: None }
    }

    /// A manually-cancellable token with no deadline.
    pub fn new() -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: None,
                parent: None,
            })),
        }
    }

    /// A token that trips once `timeout` has elapsed from now (or when
    /// manually cancelled, whichever is first).
    pub fn with_timeout(timeout: Duration) -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: Instant::now().checked_add(timeout),
                parent: None,
            })),
        }
    }

    /// Derive a per-operation token: trips when `timeout` elapses *or*
    /// when `self` is cancelled. Cancelling the child never affects the
    /// parent. On a [`CancelToken::never`] parent this is just
    /// [`CancelToken::with_timeout`].
    pub fn child_with_timeout(&self, timeout: Duration) -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: Instant::now().checked_add(timeout),
                parent: self.inner.clone(),
            })),
        }
    }

    /// Trip the token. Idempotent; a no-op on [`CancelToken::never`].
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.flag.store(true, Ordering::Relaxed);
        }
    }

    /// Has the token tripped (manually, by deadline, or via its parent)?
    pub fn is_cancelled(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => inner.tripped(),
        }
    }

    /// Poll point: `Err(Cancelled)` once the token has tripped.
    pub fn check(&self) -> Result<(), Cancelled> {
        if self.is_cancelled() {
            Err(Cancelled)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_token_never_trips() {
        let t = CancelToken::never();
        t.cancel(); // no-op
        assert!(!t.is_cancelled());
        assert_eq!(t.check(), Ok(()));
        assert!(!CancelToken::default().is_cancelled());
    }

    #[test]
    fn manual_cancel_is_shared_and_idempotent() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!clone.is_cancelled());
        t.cancel();
        t.cancel();
        assert!(clone.is_cancelled());
        assert_eq!(clone.check(), Err(Cancelled));
    }

    #[test]
    fn deadline_trips_and_latches() {
        let t = CancelToken::with_timeout(Duration::from_millis(0));
        assert!(t.is_cancelled(), "zero deadline trips immediately");
        let patient = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(!patient.is_cancelled());
    }

    #[test]
    fn child_observes_parent_but_not_vice_versa() {
        let parent = CancelToken::new();
        let child = parent.child_with_timeout(Duration::from_secs(3600));
        assert!(!child.is_cancelled());
        parent.cancel();
        assert!(child.is_cancelled(), "parent trip reaches the child");

        let parent = CancelToken::new();
        let child = parent.child_with_timeout(Duration::from_secs(3600));
        child.cancel();
        assert!(!parent.is_cancelled(), "child trip stays local");
    }

    #[test]
    fn child_deadline_still_applies() {
        let parent = CancelToken::new();
        let child = parent.child_with_timeout(Duration::from_millis(0));
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled());
    }
}
