//! Relation schemas: named predicates with named, ordered attributes.

use crate::error::RelationalError;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Identifier of a relation inside a [`Schema`] (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelId(pub u32);

impl RelId {
    /// The dense index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// Schema of a single relation: its name and attribute names.
///
/// Attribute positions are 0-based everywhere in this workspace; the paper's
/// `R[i]` is 1-based and the pretty printers translate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationSchema {
    name: String,
    attrs: Vec<String>,
}

impl RelationSchema {
    /// Create a relation schema. Attribute names must be distinct.
    pub fn new(
        name: impl Into<String>,
        attrs: impl IntoIterator<Item = impl Into<String>>,
    ) -> Result<Self, RelationalError> {
        let name = name.into();
        let attrs: Vec<String> = attrs.into_iter().map(Into::into).collect();
        let mut seen = std::collections::BTreeSet::new();
        for a in &attrs {
            if !seen.insert(a.clone()) {
                return Err(RelationalError::DuplicateAttribute {
                    relation: name,
                    attribute: a.clone(),
                });
            }
        }
        Ok(RelationSchema { name, attrs })
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Attribute names, in order.
    pub fn attrs(&self) -> &[String] {
        &self.attrs
    }

    /// 0-based position of a named attribute.
    pub fn position_of(&self, attr: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a == attr)
    }
}

/// A database schema: an ordered collection of relation schemas.
///
/// Schemas are cheap to share (`Arc` internally via [`crate::Instance`]) and
/// immutable after construction; build them with [`SchemaBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    relations: Vec<RelationSchema>,
    by_name: BTreeMap<String, RelId>,
}

impl Schema {
    /// Start building a schema.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder::default()
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// `true` iff the schema has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Look up a relation by name.
    pub fn rel_id(&self, name: &str) -> Option<RelId> {
        self.by_name.get(name).copied()
    }

    /// Look up a relation by name, with a descriptive error.
    pub fn require(&self, name: &str) -> Result<RelId, RelationalError> {
        self.rel_id(name)
            .ok_or_else(|| RelationalError::UnknownRelation(name.to_string()))
    }

    /// Schema of a relation.
    pub fn relation(&self, id: RelId) -> &RelationSchema {
        &self.relations[id.index()]
    }

    /// All relation ids, in declaration order.
    pub fn rel_ids(&self) -> impl Iterator<Item = RelId> + '_ {
        (0..self.relations.len() as u32).map(RelId)
    }

    /// All relation schemas with their ids, in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &RelationSchema)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, r)| (RelId(i as u32), r))
    }

    /// Wrap in an `Arc` for sharing across instances.
    pub fn into_shared(self) -> Arc<Schema> {
        Arc::new(self)
    }
}

/// Builder for [`Schema`].
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    relations: Vec<RelationSchema>,
    by_name: BTreeMap<String, RelId>,
    error: Option<RelationalError>,
}

impl SchemaBuilder {
    /// Add a relation with named attributes.
    ///
    /// Errors are deferred to [`SchemaBuilder::finish`] so calls chain.
    pub fn relation(
        mut self,
        name: impl Into<String>,
        attrs: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        if self.error.is_some() {
            return self;
        }
        match RelationSchema::new(name, attrs) {
            Ok(rel) => {
                if self.by_name.contains_key(rel.name()) {
                    self.error = Some(RelationalError::DuplicateRelation(rel.name().to_string()));
                } else {
                    let id = RelId(self.relations.len() as u32);
                    self.by_name.insert(rel.name().to_string(), id);
                    self.relations.push(rel);
                }
            }
            Err(e) => self.error = Some(e),
        }
        self
    }

    /// Add a relation with positional attributes auto-named `a0..a{n-1}`.
    pub fn relation_with_arity(self, name: impl Into<String>, arity: usize) -> Self {
        let attrs: Vec<String> = (0..arity).map(|i| format!("a{i}")).collect();
        self.relation(name, attrs)
    }

    /// Finish, returning the schema or the first error encountered.
    pub fn finish(self) -> Result<Schema, RelationalError> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(Schema {
                relations: self.relations,
                by_name: self.by_name,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_rel_schema() -> Schema {
        Schema::builder()
            .relation("P", ["a", "b"])
            .relation("R", ["x"])
            .finish()
            .unwrap()
    }

    #[test]
    fn lookup_by_name_and_id() {
        let s = two_rel_schema();
        let p = s.rel_id("P").unwrap();
        let r = s.rel_id("R").unwrap();
        assert_ne!(p, r);
        assert_eq!(s.relation(p).name(), "P");
        assert_eq!(s.relation(p).arity(), 2);
        assert_eq!(s.relation(r).arity(), 1);
        assert!(s.rel_id("missing").is_none());
        assert!(s.require("missing").is_err());
    }

    #[test]
    fn attribute_positions() {
        let s = two_rel_schema();
        let p = s.relation(s.rel_id("P").unwrap());
        assert_eq!(p.position_of("a"), Some(0));
        assert_eq!(p.position_of("b"), Some(1));
        assert_eq!(p.position_of("z"), None);
    }

    #[test]
    fn duplicate_relation_rejected() {
        let err = Schema::builder()
            .relation("P", ["a"])
            .relation("P", ["b"])
            .finish()
            .unwrap_err();
        assert!(matches!(err, RelationalError::DuplicateRelation(_)));
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = Schema::builder()
            .relation("P", ["a", "a"])
            .finish()
            .unwrap_err();
        assert!(matches!(err, RelationalError::DuplicateAttribute { .. }));
    }

    #[test]
    fn arity_helper_names_attributes() {
        let s = Schema::builder()
            .relation_with_arity("T", 3)
            .finish()
            .unwrap();
        let t = s.relation(s.rel_id("T").unwrap());
        assert_eq!(t.attrs(), &["a0".to_string(), "a1".into(), "a2".into()]);
    }

    #[test]
    fn iteration_order_is_declaration_order() {
        let s = two_rel_schema();
        let names: Vec<&str> = s.iter().map(|(_, r)| r.name()).collect();
        assert_eq!(names, vec!["P", "R"]);
    }
}
