//! Deterministic pseudo-random generators for cross-crate tests and
//! benchmarks.
//!
//! Kept dependency-free (a small xorshift PRNG) so that downstream crates
//! can generate reproducible instances in unit tests without pulling `rand`
//! into their non-dev dependency graph. Property-based tests use `proptest`
//! strategies built on top of these primitives in each crate's own test
//! code.

use crate::atom::DatabaseAtom;
use crate::diff::Delta;
use crate::instance::Instance;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::sync::Arc;

/// Compile-time witness that `T` may cross a thread boundary. Used in
/// `const` blocks so a type losing `Send` fails the *build*, not a test:
/// the parallel repair search moves deltas, tasks and candidate repairs
/// between worker threads.
pub const fn assert_send<T: Send>() {}

/// Compile-time witness that `&T` may be shared across threads. The
/// parallel search shares the base instance and constraint set by
/// reference from every worker.
pub const fn assert_sync<T: Sync>() {}

// The relational substrate must stay thread-safe: branch deltas are
// work-stealing task payloads and forked instances live one-per-worker,
// probing their (lazily built, `RwLock`-guarded) index registries.
const _: () = {
    assert_send::<Delta>();
    assert_sync::<Delta>();
    assert_send::<Instance>();
    assert_sync::<Instance>();
    assert_send::<DatabaseAtom>();
    assert_sync::<DatabaseAtom>();
    assert_send::<Tuple>();
    assert_sync::<Tuple>();
    assert_send::<Value>();
    assert_sync::<Value>();
};

/// Worker-thread count for tests that exercise the parallel repair
/// strategy: `CQA_TEST_THREADS` when set and parseable (the CI matrix
/// runs the suite at 1 and 4), otherwise `default`.
pub fn env_threads(default: usize) -> usize {
    std::env::var("CQA_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// A tiny deterministic xorshift64* PRNG.
#[derive(Debug, Clone)]
pub struct XorShift {
    state: u64,
}

impl XorShift {
    /// Seeded constructor; seed 0 is remapped to a fixed non-zero value.
    pub fn new(seed: u64) -> Self {
        XorShift {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `0..bound` (`bound` must be > 0).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// Bernoulli draw with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }
}

/// A small constant pool: `k` string constants `c0..c{k-1}` plus `null` with
/// the given per-position probability (as a percentage).
#[derive(Debug, Clone)]
pub struct DomainSpec {
    /// Number of distinct non-null constants.
    pub constants: usize,
    /// Percentage (0–100) of positions that receive `null`.
    pub null_percent: u64,
}

impl Default for DomainSpec {
    fn default() -> Self {
        DomainSpec {
            constants: 4,
            null_percent: 15,
        }
    }
}

impl DomainSpec {
    /// Draw one value.
    pub fn draw(&self, rng: &mut XorShift) -> Value {
        if self.null_percent > 0 && rng.chance(self.null_percent, 100) {
            Value::Null
        } else {
            Value::str(format!("c{}", rng.below(self.constants.max(1))))
        }
    }
}

/// Generate a random instance with up to `tuples_per_relation` tuples in
/// each relation (duplicates collapse under set semantics, so relations may
/// end up smaller).
pub fn random_instance(
    schema: &Arc<Schema>,
    seed: u64,
    tuples_per_relation: usize,
    domain: &DomainSpec,
) -> Instance {
    let mut rng = XorShift::new(seed);
    let mut inst = Instance::empty(schema.clone());
    for (rel, decl) in schema.iter() {
        for _ in 0..tuples_per_relation {
            let tuple: Tuple = (0..decl.arity()).map(|_| domain.draw(&mut rng)).collect();
            inst.insert(rel, tuple)
                .expect("generated arity matches schema");
        }
    }
    inst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;

    #[test]
    fn env_threads_falls_back_to_default() {
        // The test runner may or may not set CQA_TEST_THREADS; both
        // outcomes must be positive thread counts.
        let n = env_threads(4);
        assert!(n >= 1);
        match std::env::var("CQA_TEST_THREADS") {
            Ok(v) if v.parse::<usize>().map(|p| p > 0).unwrap_or(false) => {
                assert_eq!(n, v.parse::<usize>().unwrap());
            }
            _ => assert_eq!(n, 4),
        }
    }

    #[test]
    fn prng_is_deterministic() {
        let mut a = XorShift::new(7);
        let mut b = XorShift::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = XorShift::new(1);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn random_instance_is_reproducible_and_bounded() {
        let schema = Schema::builder()
            .relation("P", ["a", "b"])
            .relation("R", ["x"])
            .finish()
            .unwrap()
            .into_shared();
        let spec = DomainSpec::default();
        let d1 = random_instance(&schema, 42, 10, &spec);
        let d2 = random_instance(&schema, 42, 10, &spec);
        assert_eq!(d1, d2);
        for rel in schema.rel_ids() {
            assert!(d1.relation(rel).len() <= 10);
        }
    }

    #[test]
    fn null_percent_zero_never_draws_null() {
        let schema = Schema::builder()
            .relation("P", ["a", "b", "c"])
            .finish()
            .unwrap()
            .into_shared();
        let spec = DomainSpec {
            constants: 3,
            null_percent: 0,
        };
        let d = random_instance(&schema, 5, 50, &spec);
        assert!(d.atoms().all(|a| !a.has_null()));
    }

    #[test]
    fn null_percent_hundred_draws_only_null() {
        let schema = Schema::builder()
            .relation("P", ["a"])
            .finish()
            .unwrap()
            .into_shared();
        let spec = DomainSpec {
            constants: 3,
            null_percent: 100,
        };
        let d = random_instance(&schema, 5, 10, &spec);
        assert!(d.atoms().all(|a| a.tuple.all_null()));
    }
}
