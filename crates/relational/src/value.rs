//! Domain values, including the distinguished `null` constant.

use crate::symbol::Symbol;
use std::fmt;

/// A value of the database domain `U`.
///
/// The paper's domain is a possibly infinite set of constants with
/// `null ∈ U`. We support 64-bit integers and globally interned strings
/// ([`Symbol`]); `null` is a first-class variant rather than an `Option`
/// wrapper so that tuples can hold it positionally, exactly as SQL does.
///
/// `Value` is `Copy`: the string payload lives in the process-wide symbol
/// table, so moving values through the repair search, delta bookkeeping
/// and index probes copies 16 bytes and *equality/hashing never touch
/// string content* — an index probe costs the same for 3-byte and
/// 3000-byte constants.
///
/// `Value` implements a *total* order (`Null < Int < Sym`, integers
/// numerically, strings lexicographically — resolved through the symbol
/// table with an id fast path). This order is what "treating `null` as any
/// other constant" (Definition 4 of the paper) means operationally:
/// equality and comparison are ordinary value comparisons. Whether a
/// comparison involving `null` is *semantically meaningful* is decided by
/// the constraint layer (via `IsNull` escapes), never here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Value {
    /// The single SQL-style null constant.
    Null,
    /// A 64-bit integer constant.
    Int(i64),
    /// An interned string constant. Equality and hashing compare the
    /// symbol id, never the characters.
    Sym(Symbol),
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Int(_), Sym(_)) => Ordering::Less,
            (Sym(_), Int(_)) => Ordering::Greater,
            // Symbol::cmp short-circuits equal ids before resolving.
            (Sym(a), Sym(b)) => a.cmp(b),
        }
    }
}

impl Value {
    /// Build (interning) a string value.
    pub fn str(v: impl AsRef<str>) -> Self {
        Value::Sym(Symbol::intern(v.as_ref()))
    }

    /// `true` iff this value is the null constant.
    /// This is the `IsNull(·)` predicate of Definition 5.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// A short type tag, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Int(_) => "int",
            Value::Sym(_) => "str",
        }
    }

    /// Numeric view, if the value is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// String view, if the value is an interned string. The `'static`
    /// lifetime comes from the append-only global symbol table.
    pub fn as_str(&self) -> Option<&'static str> {
        match self {
            Value::Sym(v) => Some(v.as_str()),
            _ => None,
        }
    }

    /// The symbol id, if the value is an interned string.
    pub fn as_symbol(&self) -> Option<Symbol> {
        match self {
            Value::Sym(v) => Some(*v),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Sym(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::str(v)
    }
}

impl From<Symbol> for Value {
    fn from(v: Symbol) -> Self {
        Value::Sym(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_null_and_nothing_else_is() {
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
        assert!(!Value::str("null").is_null()); // the *string* "null" is data
    }

    #[test]
    fn total_order_is_null_int_str() {
        let mut vs = vec![Value::str("a"), Value::Int(3), Value::Null, Value::Int(-1)];
        vs.sort();
        assert_eq!(
            vs,
            vec![Value::Null, Value::Int(-1), Value::Int(3), Value::str("a")]
        );
    }

    #[test]
    fn symbol_order_is_lexicographic_independent_of_interning_order() {
        // Intern in an order unrelated to the lexicographic one: ordering
        // must follow the text, not the ids.
        let late = Value::str("value-order-aaa");
        let early = Value::str("value-order-zzz");
        assert!(late < early);
        assert!(Value::str("b") > Value::str("a"));
        assert!(Value::str("a") < Value::str("ab"));
    }

    #[test]
    fn null_equals_null_as_ordinary_constant() {
        // Definition 4 evaluates ψ^N classically with null as an ordinary
        // constant; Example 12 relies on null = null holding there.
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::str("W04").to_string(), "W04");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(7), Value::Int(7));
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_eq!(Value::from("x".to_string()), Value::str("x"));
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::Null.as_int(), None);
        assert_eq!(Value::Int(1).as_str(), None);
        assert_eq!(Value::str("x").as_symbol(), Some(Symbol::intern("x")));
    }

    #[test]
    fn values_are_copy() {
        let v = Value::str("copy-me");
        let w = v; // Copy, not move
        assert_eq!(v, w);
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::Null.type_name(), "null");
        assert_eq!(Value::Int(0).type_name(), "int");
        assert_eq!(Value::str("").type_name(), "str");
    }
}
