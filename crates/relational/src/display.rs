//! ASCII table rendering for relations and instances, in the style of the
//! paper's example tables.

use crate::instance::Instance;
use crate::schema::RelId;
use std::fmt::Write as _;

/// Render one relation as an aligned ASCII table.
///
/// ```text
/// Course
///  Code | ID | Term
/// ------+----+-----
///  CS27 | 21 | W04
/// ```
pub fn relation_table(instance: &Instance, rel: RelId) -> String {
    let decl = instance.schema().relation(rel);
    let mut rows: Vec<Vec<String>> = Vec::new();
    rows.push(decl.attrs().to_vec());
    for t in instance.relation(rel) {
        rows.push(t.values().iter().map(|v| v.to_string()).collect());
    }
    let arity = decl.arity();
    let mut widths = vec![0usize; arity];
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{}", decl.name());
    for (r, row) in rows.iter().enumerate() {
        let mut line = String::new();
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                line.push_str(" | ");
            }
            let _ = write!(line, "{:width$}", cell, width = widths[i]);
        }
        let _ = writeln!(out, " {}", line.trim_end());
        if r == 0 {
            let sep: Vec<String> = widths.iter().map(|w| "-".repeat(w + 2)).collect();
            let _ = writeln!(out, "{}", sep.join("+").trim_end());
        }
    }
    if rows.len() == 1 {
        let _ = writeln!(out, " (empty)");
    }
    out
}

/// Render every non-empty relation of the instance (empty relations are
/// listed at the end as names only).
pub fn instance_tables(instance: &Instance) -> String {
    let mut out = String::new();
    let mut empties: Vec<&str> = Vec::new();
    for (rel, decl) in instance.schema().iter() {
        if instance.relation(rel).is_empty() {
            empties.push(decl.name());
        } else {
            out.push_str(&relation_table(instance, rel));
            out.push('\n');
        }
    }
    if !empties.is_empty() {
        let _ = writeln!(out, "(empty relations: {})", empties.join(", "));
    }
    out
}

/// Render an instance as a one-line set of atoms, e.g.
/// `{P(a, b), P(null, a), T(c)}` — the notation used in the paper's
/// repair examples.
pub fn instance_set(instance: &Instance) -> String {
    let atoms: Vec<String> = instance
        .atoms()
        .map(|a| a.display(instance.schema()).to_string())
        .collect();
    format!("{{{}}}", atoms.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{i, null, s, Schema};

    fn example5_course() -> Instance {
        let schema = Schema::builder()
            .relation("Course", ["Code", "ID", "Term"])
            .relation("Empty", ["X"])
            .finish()
            .unwrap()
            .into_shared();
        let mut d = Instance::empty(schema);
        d.insert_named("Course", [s("CS27"), i(21).to_string().into(), s("W04")])
            .unwrap();
        d.insert_named("Course", [s("CS50"), null(), s("W05")])
            .unwrap();
        d
    }

    #[test]
    fn table_has_header_separator_and_rows() {
        let d = example5_course();
        let rel = d.schema().rel_id("Course").unwrap();
        let t = relation_table(&d, rel);
        assert!(t.starts_with("Course\n"));
        assert!(t.contains("Code |"));
        assert!(t.contains("| Term"));
        assert!(t.contains("CS27"));
        assert!(t.contains("null"));
        assert!(t.contains("-+-"));
    }

    #[test]
    fn empty_relation_renders_placeholder() {
        let d = example5_course();
        let rel = d.schema().rel_id("Empty").unwrap();
        assert!(relation_table(&d, rel).contains("(empty)"));
    }

    #[test]
    fn instance_tables_lists_empty_relations() {
        let d = example5_course();
        let all = instance_tables(&d);
        assert!(all.contains("Course"));
        assert!(all.contains("(empty relations: Empty)"));
    }

    #[test]
    fn set_notation() {
        let schema = Schema::builder()
            .relation("P", ["a", "b"])
            .finish()
            .unwrap()
            .into_shared();
        let mut d = Instance::empty(schema);
        d.insert_named("P", [s("a"), null()]).unwrap();
        assert_eq!(instance_set(&d), "{P(a, null)}");
    }
}
