//! Database instances: finite sets of ground atoms over a schema.

use crate::atom::DatabaseAtom;
use crate::diff::Delta;
use crate::error::RelationalError;
use crate::index::{ColumnIndex, CompositeIndex, IndexStore};
use crate::schema::{RelId, Schema};
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Global source of content-version stamps (see [`Instance::version`]).
static NEXT_VERSION: AtomicU64 = AtomicU64::new(1);

fn fresh_version() -> u64 {
    NEXT_VERSION.fetch_add(1, Ordering::Relaxed)
}

/// The extension of one relation: a *set* of tuples.
///
/// Sets, not bags: the paper explicitly works with set semantics and
/// discusses the divergence from SQL's bag semantics in Example 7.
pub type Relation = BTreeSet<Tuple>;

/// A database instance `D` over a fixed [`Schema`].
///
/// Instances are ordinary values. Relation extensions are shared behind
/// `Arc`s with copy-on-write mutation, so *forking* an instance (the repair
/// engine's branch step) is a handful of reference-count bumps and a fork
/// pays only for the relations it actually touches. All iteration is in
/// deterministic (B-tree) order.
///
/// Secondary hash indexes ([`crate::index`]) are registered lazily via
/// [`Instance::index_on`] and maintained on every insert/remove. Index
/// state is derived data: it participates in neither equality nor ordering.
#[derive(Debug, Clone)]
pub struct Instance {
    schema: Arc<Schema>,
    relations: Vec<Arc<Relation>>,
    indexes: IndexStore,
    /// Content-version stamp: reassigned (from a global counter) on every
    /// content mutation, copied on clone. Equal stamps imply equal atom
    /// sets — a clone shares its original's stamp until either mutates,
    /// and no two mutation events ever receive the same stamp.
    version: u64,
}

impl PartialEq for Instance {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.relations == other.relations
    }
}

impl Eq for Instance {}

impl Instance {
    /// An empty instance over `schema`.
    pub fn empty(schema: Arc<Schema>) -> Self {
        let relations = (0..schema.len())
            .map(|_| Arc::new(Relation::new()))
            .collect();
        Instance {
            schema,
            relations,
            indexes: IndexStore::default(),
            version: fresh_version(),
        }
    }

    /// The content-version stamp. Two instances with equal stamps hold
    /// equal atom sets (the converse does not hold: equal content rebuilt
    /// independently gets distinct stamps). Derived caches — e.g. the
    /// repair engine's root-violation worklist — key on this to detect
    /// mutation between calls.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Build an instance from atoms.
    pub fn from_atoms(
        schema: Arc<Schema>,
        atoms: impl IntoIterator<Item = DatabaseAtom>,
    ) -> Result<Self, RelationalError> {
        let mut inst = Instance::empty(schema);
        for a in atoms {
            inst.insert(a.rel, a.tuple)?;
        }
        Ok(inst)
    }

    /// Build an instance directly from per-relation tuple sets, in schema
    /// declaration order — the bulk-load hook deserializers use. Unlike
    /// [`Instance::from_atoms`] this skips the per-insert copy-on-write
    /// and version churn; arity is still validated for every tuple, so a
    /// hand-edited snapshot cannot smuggle malformed rows in.
    pub fn from_relations(
        schema: Arc<Schema>,
        relations: Vec<Relation>,
    ) -> Result<Self, RelationalError> {
        if relations.len() != schema.len() {
            return Err(RelationalError::SchemaMismatch);
        }
        for (id, decl) in schema.iter() {
            for tuple in &relations[id.index()] {
                if tuple.arity() != decl.arity() {
                    return Err(RelationalError::ArityMismatch {
                        relation: decl.name().to_string(),
                        expected: decl.arity(),
                        actual: tuple.arity(),
                    });
                }
            }
        }
        Ok(Instance {
            schema,
            relations: relations.into_iter().map(Arc::new).collect(),
            indexes: IndexStore::default(),
            version: fresh_version(),
        })
    }

    /// The shared schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Insert a tuple into a relation; `Ok(true)` if it was new.
    pub fn insert(&mut self, rel: RelId, tuple: Tuple) -> Result<bool, RelationalError> {
        let decl = self.schema.relation(rel);
        if decl.arity() != tuple.arity() {
            return Err(RelationalError::ArityMismatch {
                relation: decl.name().to_string(),
                expected: decl.arity(),
                actual: tuple.arity(),
            });
        }
        let added = Arc::make_mut(&mut self.relations[rel.index()]).insert(tuple.clone());
        if added {
            self.indexes.note_insert(rel, &tuple);
            self.version = fresh_version();
        }
        Ok(added)
    }

    /// Insert by relation name.
    pub fn insert_named(
        &mut self,
        relation: &str,
        tuple: impl Into<Tuple>,
    ) -> Result<bool, RelationalError> {
        let rel = self.schema.require(relation)?;
        self.insert(rel, tuple.into())
    }

    /// Remove a tuple; `true` if it was present.
    pub fn remove(&mut self, rel: RelId, tuple: &Tuple) -> bool {
        let removed = Arc::make_mut(&mut self.relations[rel.index()]).remove(tuple);
        if removed {
            self.indexes.note_remove(rel, tuple);
            self.version = fresh_version();
        }
        removed
    }

    /// Membership test for an atom.
    pub fn contains(&self, atom: &DatabaseAtom) -> bool {
        self.relations[atom.rel.index()].contains(&atom.tuple)
    }

    /// The extension of a relation.
    pub fn relation(&self, rel: RelId) -> &Relation {
        &self.relations[rel.index()]
    }

    /// The secondary hash index over `col` of `rel`, building it on first
    /// request and maintaining it on later mutations.
    ///
    /// The returned handle is an `Arc` snapshot detached from future
    /// mutations of `self`: re-fetch after mutating. See [`crate::index`].
    pub fn index_on(&self, rel: RelId, col: usize) -> Arc<ColumnIndex> {
        self.indexes
            .get_or_build(rel, col, &self.relations[rel.index()])
    }

    /// The registered index columns of `rel` (diagnostics and tests).
    pub fn indexed_columns(&self, rel: RelId) -> Vec<u32> {
        self.indexes.registered_cols(rel)
    }

    /// The composite (column-set) hash index over `cols` of `rel`,
    /// building it on first request and maintaining it on later
    /// mutations. `cols` is canonicalised (sorted ascending, de-duplicated)
    /// before lookup, so `&[1, 0]` and `&[0, 1]` name the same index; the
    /// returned handle's [`CompositeIndex::cols`] gives the canonical
    /// order probe values must be supplied in.
    ///
    /// Same snapshot semantics as [`Instance::index_on`]: the handle is
    /// detached from future mutations of `self`.
    ///
    /// Panics if `cols` is empty or mentions a column out of range for
    /// `rel` — column sets are always driven by validated constraints.
    pub fn index_on_cols(&self, rel: RelId, cols: &[usize]) -> Arc<CompositeIndex> {
        assert!(!cols.is_empty(), "composite index needs at least 1 column");
        let arity = self.schema.relation(rel).arity();
        let mut canonical: Vec<u32> = cols
            .iter()
            .map(|&c| {
                assert!(c < arity, "column {c} out of range for arity {arity}");
                c as u32
            })
            .collect();
        // The hot caller (probe planning) supplies strictly ascending
        // columns by construction; only canonicalise when it must.
        if !canonical.windows(2).all(|w| w[0] < w[1]) {
            canonical.sort_unstable();
            canonical.dedup();
        }
        self.indexes
            .get_or_build_cols(rel, &canonical, &self.relations[rel.index()])
    }

    /// The registered composite column sets of `rel` (diagnostics and
    /// tests).
    pub fn indexed_column_sets(&self, rel: RelId) -> Vec<Vec<u32>> {
        self.indexes.registered_col_sets(rel)
    }

    /// Apply an atom-level [`Delta`]: remove `delta.removed`, insert
    /// `delta.inserted`. Atoms already absent/present are skipped (set
    /// semantics). Indexes are maintained.
    pub fn apply_delta(&mut self, delta: &Delta) {
        self.apply(
            delta.inserted.iter().cloned(),
            delta.removed.iter().cloned(),
        );
    }

    /// Undo [`Instance::apply_delta`]: re-insert `delta.removed`, remove
    /// `delta.inserted`. Only exact (apply, revert) pairs round-trip: the
    /// caller must not interleave other mutations of the same atoms.
    pub fn revert_delta(&mut self, delta: &Delta) {
        self.apply(
            delta.removed.iter().cloned(),
            delta.inserted.iter().cloned(),
        );
    }

    /// The extension of a relation, by name.
    pub fn relation_named(&self, name: &str) -> Result<&Relation, RelationalError> {
        Ok(self.relation(self.schema.require(name)?))
    }

    /// Total number of tuples across all relations.
    pub fn len(&self) -> usize {
        self.relations.iter().map(|r| r.len()).sum()
    }

    /// `true` iff the instance holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.relations.iter().all(|r| r.is_empty())
    }

    /// Iterate over every atom, relation by relation, in deterministic order.
    pub fn atoms(&self) -> impl Iterator<Item = DatabaseAtom> + '_ {
        self.relations.iter().enumerate().flat_map(|(i, rel)| {
            rel.iter()
                .map(move |t| DatabaseAtom::new(RelId(i as u32), t.clone()))
        })
    }

    /// The active domain `adom(D)`: every constant occurring in the
    /// instance, including `null` if present (Proposition 1 adds `null`
    /// explicitly, so callers that need it add it themselves).
    pub fn active_domain(&self) -> BTreeSet<Value> {
        let mut dom = BTreeSet::new();
        for rel in self.relations.iter() {
            for t in rel.iter() {
                for v in t.values() {
                    dom.insert(*v);
                }
            }
        }
        dom
    }

    /// Functional update: a copy with `atom` added.
    pub fn with_atom(&self, atom: &DatabaseAtom) -> Instance {
        let mut next = self.clone();
        if Arc::make_mut(&mut next.relations[atom.rel.index()]).insert(atom.tuple.clone()) {
            next.indexes.note_insert(atom.rel, &atom.tuple);
            next.version = fresh_version();
        }
        next
    }

    /// Functional update: a copy with `atom` removed.
    pub fn without_atom(&self, atom: &DatabaseAtom) -> Instance {
        let mut next = self.clone();
        if Arc::make_mut(&mut next.relations[atom.rel.index()]).remove(&atom.tuple) {
            next.indexes.note_remove(atom.rel, &atom.tuple);
            next.version = fresh_version();
        }
        next
    }

    /// Apply a batch of insertions and deletions in place.
    pub fn apply(
        &mut self,
        insert: impl IntoIterator<Item = DatabaseAtom>,
        delete: impl IntoIterator<Item = DatabaseAtom>,
    ) {
        for a in delete {
            self.remove(a.rel, &a.tuple);
        }
        for a in insert {
            let _ = self.insert(a.rel, a.tuple);
        }
    }

    /// `true` iff both instances share (pointer- or value-) equal schemas.
    pub fn same_schema(&self, other: &Instance) -> bool {
        Arc::ptr_eq(&self.schema, &other.schema) || self.schema == other.schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{i, null, s};

    fn schema() -> Arc<Schema> {
        Schema::builder()
            .relation("P", ["a", "b"])
            .relation("R", ["x"])
            .finish()
            .unwrap()
            .into_shared()
    }

    fn p(inst: &Instance) -> RelId {
        inst.schema().rel_id("P").unwrap()
    }

    #[test]
    fn insert_and_contains() {
        let mut d = Instance::empty(schema());
        assert!(d.insert_named("P", [s("a"), null()]).unwrap());
        assert!(!d.insert_named("P", [s("a"), null()]).unwrap()); // set semantics
        let atom = DatabaseAtom::new(p(&d), Tuple::new(vec![s("a"), null()]));
        assert!(d.contains(&atom));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn arity_checked_on_insert() {
        let mut d = Instance::empty(schema());
        let err = d.insert_named("P", [s("a")]).unwrap_err();
        assert!(matches!(err, RelationalError::ArityMismatch { .. }));
    }

    #[test]
    fn unknown_relation_rejected() {
        let mut d = Instance::empty(schema());
        assert!(d.insert_named("Z", [s("a")]).is_err());
    }

    #[test]
    fn active_domain_collects_all_constants_including_null() {
        let mut d = Instance::empty(schema());
        d.insert_named("P", [s("a"), null()]).unwrap();
        d.insert_named("R", [i(7)]).unwrap();
        let dom = d.active_domain();
        assert!(dom.contains(&null()));
        assert!(dom.contains(&s("a")));
        assert!(dom.contains(&i(7)));
        assert_eq!(dom.len(), 3);
    }

    #[test]
    fn functional_updates_do_not_mutate() {
        let mut d = Instance::empty(schema());
        d.insert_named("R", [i(1)]).unwrap();
        let a = DatabaseAtom::new(d.schema().rel_id("R").unwrap(), Tuple::new(vec![i(2)]));
        let d2 = d.with_atom(&a);
        assert_eq!(d.len(), 1);
        assert_eq!(d2.len(), 2);
        let d3 = d2.without_atom(&a);
        assert_eq!(d3, d);
    }

    #[test]
    fn atoms_iterates_in_deterministic_order() {
        let mut d = Instance::empty(schema());
        d.insert_named("P", [s("b"), s("c")]).unwrap();
        d.insert_named("P", [s("a"), s("z")]).unwrap();
        d.insert_named("R", [i(1)]).unwrap();
        let atoms: Vec<String> = d
            .atoms()
            .map(|a| a.display(d.schema()).to_string())
            .collect();
        assert_eq!(atoms, vec!["P(a, z)", "P(b, c)", "R(1)"]);
    }

    #[test]
    fn from_atoms_roundtrip() {
        let mut d = Instance::empty(schema());
        d.insert_named("P", [s("a"), s("b")]).unwrap();
        d.insert_named("R", [i(3)]).unwrap();
        let rebuilt = Instance::from_atoms(d.schema().clone(), d.atoms()).unwrap();
        assert_eq!(rebuilt, d);
    }

    #[test]
    fn from_relations_bulk_loads_and_validates() {
        let sc = schema();
        let mut d = Instance::empty(sc.clone());
        d.insert_named("P", [s("a"), s("b")]).unwrap();
        d.insert_named("R", [i(3)]).unwrap();
        // Rebuilding from the raw relation sets reproduces the instance.
        let rels: Vec<Relation> = sc.rel_ids().map(|id| d.relation(id).clone()).collect();
        let bulk = Instance::from_relations(sc.clone(), rels).unwrap();
        assert_eq!(bulk, d);
        // Wrong relation count and wrong arity are rejected.
        assert!(matches!(
            Instance::from_relations(sc.clone(), vec![Relation::new()]),
            Err(RelationalError::SchemaMismatch)
        ));
        let bad: Vec<Relation> = vec![
            [Tuple::new(vec![s("only-one")])].into_iter().collect(),
            Relation::new(),
        ];
        assert!(matches!(
            Instance::from_relations(sc, bad),
            Err(RelationalError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn version_stamps_track_content_mutation() {
        let mut d = Instance::empty(schema());
        let v0 = d.version();
        let fork = d.clone();
        assert_eq!(fork.version(), v0); // clones share the stamp…
        d.insert_named("R", [i(1)]).unwrap();
        assert_ne!(d.version(), v0); // …until a mutation
        assert_eq!(fork.version(), v0);
        let v1 = d.version();
        assert!(!d.insert_named("R", [i(1)]).unwrap());
        assert_eq!(d.version(), v1); // content no-ops keep the stamp
        let r = d.schema().rel_id("R").unwrap();
        assert!(!d.remove(r, &Tuple::new(vec![i(9)])));
        assert_eq!(d.version(), v1);
        d.remove(r, &Tuple::new(vec![i(1)]));
        assert_ne!(d.version(), v1);
        // Functional updates stamp the copy, not the original.
        let a = DatabaseAtom::new(r, Tuple::new(vec![i(2)]));
        let v2 = d.version();
        let with = d.with_atom(&a);
        assert_eq!(d.version(), v2);
        assert_ne!(with.version(), v2);
        assert_ne!(with.without_atom(&a).version(), with.version());
        // Distinct instances never share a stamp, even when content-equal.
        assert_ne!(
            Instance::empty(schema()).version(),
            Instance::empty(schema()).version()
        );
    }

    #[test]
    fn apply_batches_insertions_and_deletions() {
        let mut d = Instance::empty(schema());
        d.insert_named("R", [i(1)]).unwrap();
        let r = d.schema().rel_id("R").unwrap();
        let del = DatabaseAtom::new(r, Tuple::new(vec![i(1)]));
        let ins = DatabaseAtom::new(r, Tuple::new(vec![i(2)]));
        d.apply([ins.clone()], [del.clone()]);
        assert!(d.contains(&ins));
        assert!(!d.contains(&del));
    }
}
