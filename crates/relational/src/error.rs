//! Error type for the relational substrate.

use std::fmt;

/// Errors raised while building schemas or manipulating instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationalError {
    /// A relation name was declared twice in one schema.
    DuplicateRelation(String),
    /// An attribute name appears twice in one relation.
    DuplicateAttribute {
        /// The relation being declared.
        relation: String,
        /// The repeated attribute name.
        attribute: String,
    },
    /// A relation name was not found in the schema.
    UnknownRelation(String),
    /// A tuple's arity does not match its relation's arity.
    ArityMismatch {
        /// The relation the tuple was inserted into.
        relation: String,
        /// Arity declared by the schema.
        expected: usize,
        /// Arity of the offending tuple.
        actual: usize,
    },
    /// Two instances were combined that do not share a schema.
    SchemaMismatch,
}

impl fmt::Display for RelationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationalError::DuplicateRelation(name) => {
                write!(f, "relation `{name}` declared more than once")
            }
            RelationalError::DuplicateAttribute {
                relation,
                attribute,
            } => write!(
                f,
                "attribute `{attribute}` declared more than once in relation `{relation}`"
            ),
            RelationalError::UnknownRelation(name) => {
                write!(f, "unknown relation `{name}`")
            }
            RelationalError::ArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "arity mismatch for relation `{relation}`: schema says {expected}, tuple has {actual}"
            ),
            RelationalError::SchemaMismatch => {
                write!(f, "operation requires instances over the same schema")
            }
        }
    }
}

impl std::error::Error for RelationalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_names() {
        let e = RelationalError::ArityMismatch {
            relation: "P".into(),
            expected: 2,
            actual: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains('P') && msg.contains('2') && msg.contains('3'));
        assert!(RelationalError::UnknownRelation("Q".into())
            .to_string()
            .contains('Q'));
    }
}
