//! Symmetric differences Δ(D, D′) between instances over one schema.

use crate::atom::DatabaseAtom;
use crate::error::RelationalError;
use crate::instance::Instance;
use std::collections::BTreeSet;

/// The symmetric difference `Δ(D, D′) = (D ∖ D′) ∪ (D′ ∖ D)` split by
/// direction.
///
/// The paper's repair machinery (Definitions 6–7) works on Δ as a plain set
/// of atoms; [`Delta::atoms`] provides that view, while `removed`/`inserted`
/// keep the direction for reporting and for applying repairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Delta {
    /// Atoms of `D` missing from `D′` (deletions).
    pub removed: BTreeSet<DatabaseAtom>,
    /// Atoms of `D′` missing from `D` (insertions).
    pub inserted: BTreeSet<DatabaseAtom>,
}

impl Delta {
    /// The atom-level delta of a single insertion (the repair engine's
    /// `t_a` decision).
    pub fn insertion(atom: DatabaseAtom) -> Delta {
        Delta {
            removed: BTreeSet::new(),
            inserted: BTreeSet::from([atom]),
        }
    }

    /// The atom-level delta of a single deletion (an `f_a` decision).
    pub fn deletion(atom: DatabaseAtom) -> Delta {
        Delta {
            removed: BTreeSet::from([atom]),
            inserted: BTreeSet::new(),
        }
    }

    /// All atoms of the symmetric difference, deletions first.
    pub fn atoms(&self) -> impl Iterator<Item = &DatabaseAtom> {
        self.removed.iter().chain(self.inserted.iter())
    }

    /// Number of atoms in the symmetric difference.
    pub fn len(&self) -> usize {
        self.removed.len() + self.inserted.len()
    }

    /// `true` iff the instances were equal.
    pub fn is_empty(&self) -> bool {
        self.removed.is_empty() && self.inserted.is_empty()
    }

    /// Membership in the symmetric difference.
    pub fn contains(&self, atom: &DatabaseAtom) -> bool {
        self.removed.contains(atom) || self.inserted.contains(atom)
    }

    /// Is the *set* `Δ₁ ⊆ Δ₂`? (Direction-sensitive: a deletion only
    /// matches a deletion, an insertion only an insertion — Δs against the
    /// same original `D` agree on direction for any shared atom.)
    pub fn subset_of(&self, other: &Delta) -> bool {
        self.removed.is_subset(&other.removed) && self.inserted.is_subset(&other.inserted)
    }
}

/// A *directed* instance drift `base → target`: the atoms the target
/// **added** and the atoms it **removed**, as a first-class value.
///
/// Where [`Delta`] is the paper's symmetric difference (repair machinery,
/// Definitions 6–7), `InstanceDelta` is the *maintenance* view of the
/// same information: a caching layer that holds a derived structure for
/// `base` (e.g. a grounding of Π(D, IC)) replays `removed` then `added`
/// onto it to evolve the structure to `target` incrementally. The
/// `cqa-core` grounding cache is the canonical consumer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InstanceDelta {
    /// Atoms of `target` missing from `base`.
    pub added: BTreeSet<DatabaseAtom>,
    /// Atoms of `base` missing from `target`.
    pub removed: BTreeSet<DatabaseAtom>,
}

impl InstanceDelta {
    /// The drift from `base` to `target`.
    ///
    /// Errors if the two instances do not share a schema.
    pub fn between(base: &Instance, target: &Instance) -> Result<InstanceDelta, RelationalError> {
        let d = delta(base, target)?;
        Ok(InstanceDelta {
            added: d.inserted,
            removed: d.removed,
        })
    }

    /// Total number of drifted atoms.
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// `true` iff the instances were content-equal.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Does the drift exceed `num/den` of `of`'s atom count? The escape
    /// hatch a maintenance consumer uses to fall back to a rebuild when
    /// replaying the delta would cost more than starting over.
    ///
    /// Edge cases are pinned by direct tests: an empty drift never
    /// exceeds anything; a non-empty drift against an *empty* target
    /// exceeds every finite fraction (there is nothing worth replaying
    /// onto — the old `max(1)` clamp under-triggered here for `num > 1`);
    /// `den == 0` reads as an infinite threshold, never exceeded, rather
    /// than a division hazard; and the products are widened to `u128` so
    /// extreme fraction arguments cannot overflow.
    pub fn exceeds_fraction_of(&self, of: &Instance, num: usize, den: usize) -> bool {
        if self.is_empty() || den == 0 {
            return false;
        }
        if of.is_empty() {
            return true;
        }
        self.len() as u128 * den as u128 > of.len() as u128 * num as u128
    }
}

/// Compute `Δ(d, d_prime)`.
///
/// Errors if the two instances do not share a schema.
pub fn delta(d: &Instance, d_prime: &Instance) -> Result<Delta, RelationalError> {
    if !d.same_schema(d_prime) {
        return Err(RelationalError::SchemaMismatch);
    }
    let mut out = Delta::default();
    for atom in d.atoms() {
        if !d_prime.contains(&atom) {
            out.removed.insert(atom);
        }
    }
    for atom in d_prime.atoms() {
        if !d.contains(&atom) {
            out.inserted.insert(atom);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{i, s, Schema};
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::builder()
            .relation("P", ["a"])
            .relation("Q", ["x", "y"])
            .finish()
            .unwrap()
            .into_shared()
    }

    #[test]
    fn delta_of_identical_instances_is_empty() {
        let mut d = Instance::empty(schema());
        d.insert_named("P", [i(1)]).unwrap();
        let dl = delta(&d, &d.clone()).unwrap();
        assert!(dl.is_empty());
        assert_eq!(dl.len(), 0);
    }

    #[test]
    fn delta_splits_directions() {
        let sc = schema();
        let mut d = Instance::empty(sc.clone());
        d.insert_named("P", [i(1)]).unwrap();
        d.insert_named("Q", [s("a"), s("b")]).unwrap();
        let mut d2 = Instance::empty(sc);
        d2.insert_named("P", [i(1)]).unwrap();
        d2.insert_named("Q", [s("a"), s("c")]).unwrap();
        let dl = delta(&d, &d2).unwrap();
        assert_eq!(dl.removed.len(), 1); // Q(a,b)
        assert_eq!(dl.inserted.len(), 1); // Q(a,c)
        assert_eq!(dl.len(), 2);
        assert_eq!(dl.atoms().count(), 2);
    }

    #[test]
    fn delta_is_symmetric_as_a_set() {
        let sc = schema();
        let mut d = Instance::empty(sc.clone());
        d.insert_named("P", [i(1)]).unwrap();
        let d2 = Instance::empty(sc);
        let ab = delta(&d, &d2).unwrap();
        let ba = delta(&d2, &d).unwrap();
        let set_ab: BTreeSet<_> = ab.atoms().cloned().collect();
        let set_ba: BTreeSet<_> = ba.atoms().cloned().collect();
        assert_eq!(set_ab, set_ba);
        assert_eq!(ab.removed, ba.inserted);
    }

    #[test]
    fn subset_respects_direction() {
        let sc = schema();
        let mut d = Instance::empty(sc.clone());
        d.insert_named("P", [i(1)]).unwrap();
        let empty = Instance::empty(sc.clone());
        let mut with_two = Instance::empty(sc);
        with_two.insert_named("P", [i(2)]).unwrap();

        let del = delta(&d, &empty).unwrap(); // remove P(1)
        let swap = delta(&d, &with_two).unwrap(); // remove P(1), insert P(2)
        assert!(del.subset_of(&swap));
        assert!(!swap.subset_of(&del));
    }

    #[test]
    fn instance_delta_directs_the_drift() {
        let sc = schema();
        let mut base = Instance::empty(sc.clone());
        base.insert_named("P", [i(1)]).unwrap();
        base.insert_named("Q", [s("a"), s("b")]).unwrap();
        let mut target = Instance::empty(sc);
        target.insert_named("P", [i(1)]).unwrap();
        target.insert_named("Q", [s("a"), s("c")]).unwrap();
        let drift = InstanceDelta::between(&base, &target).unwrap();
        assert_eq!(drift.added.len(), 1); // Q(a,c)
        assert_eq!(drift.removed.len(), 1); // Q(a,b)
        assert_eq!(drift.len(), 2);
        assert!(!drift.is_empty());
        assert!(InstanceDelta::between(&base, &base.clone())
            .unwrap()
            .is_empty());
        // 2 drifted atoms over a 2-atom target: exceeds 1/2, not 2/1.
        assert!(drift.exceeds_fraction_of(&target, 1, 2));
        assert!(!drift.exceeds_fraction_of(&target, 2, 1));
    }

    #[test]
    fn instance_delta_fraction_handles_empty_target() {
        let sc = schema();
        let mut base = Instance::empty(sc.clone());
        base.insert_named("P", [i(1)]).unwrap();
        let target = Instance::empty(sc);
        let drift = InstanceDelta::between(&base, &target).unwrap();
        assert_eq!(drift.removed.len(), 1);
        // Empty target: any non-empty drift exceeds every fraction.
        assert!(drift.exceeds_fraction_of(&target, 1, 2));
        // … including generous ones, where the old `max(1)` clamp
        // under-triggered (1 * den > 1 * 10 was false).
        assert!(drift.exceeds_fraction_of(&target, 10, 1));
    }

    #[test]
    fn instance_delta_fraction_edge_cases() {
        let sc = schema();
        let empty = Instance::empty(sc.clone());
        let mut small = Instance::empty(sc.clone());
        small.insert_named("P", [i(100)]).unwrap(); // disjoint from `big`
        let mut big = Instance::empty(sc);
        for k in 0..6 {
            big.insert_named("P", [i(k)]).unwrap();
        }

        // An empty drift never exceeds anything — not even over an empty
        // target, and not for a zero fraction.
        let none = InstanceDelta::default();
        assert!(!none.exceeds_fraction_of(&empty, 1, 2));
        assert!(!none.exceeds_fraction_of(&small, 0, 1));

        // A drift larger than the instance trips the hatch for any
        // fraction up to its actual ratio: 7 drifted atoms over a 1-atom
        // target exceed 1/2, 1/1, and even 6/1 — but not 7/1.
        let swap = InstanceDelta::between(&big, &small).unwrap();
        assert_eq!(swap.len(), 7); // 6 removed + 1 added
        assert!(swap.exceeds_fraction_of(&small, 1, 2));
        assert!(swap.exceeds_fraction_of(&small, 1, 1));
        assert!(swap.exceeds_fraction_of(&small, 6, 1));
        assert!(!swap.exceeds_fraction_of(&small, 7, 1));

        // den == 0 is an infinite threshold, not a division hazard.
        assert!(!swap.exceeds_fraction_of(&small, 1, 0));
        assert!(!swap.exceeds_fraction_of(&empty, 1, 0));

        // num == 0 with a finite den: any non-empty drift exceeds.
        assert!(swap.exceeds_fraction_of(&small, 0, 1));

        // Extreme fraction arguments must not overflow the products.
        assert!(swap.exceeds_fraction_of(&small, 0, usize::MAX));
        assert!(!swap.exceeds_fraction_of(&small, usize::MAX, 1));
    }

    #[test]
    fn mismatched_schemas_error() {
        let other = Schema::builder()
            .relation("Z", ["a"])
            .finish()
            .unwrap()
            .into_shared();
        let d = Instance::empty(schema());
        let d2 = Instance::empty(other);
        assert!(delta(&d, &d2).is_err());
    }
}
