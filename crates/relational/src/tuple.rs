//! Database tuples: fixed-arity sequences of [`Value`]s.

use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// An immutable database tuple.
///
/// Backed by `Arc<[Value]>` so that cloning tuples during repair-space
/// search, grounding and Δ bookkeeping is a reference-count bump.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple(Arc<[Value]>);

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: impl IntoIterator<Item = Value>) -> Self {
        Tuple(values.into_iter().collect())
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The values, in attribute order.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Value at (0-based) position `i`.
    ///
    /// The paper's `R[i]` notation is 1-based; all public APIs of this
    /// workspace are 0-based and say so explicitly.
    pub fn get(&self, i: usize) -> &Value {
        &self.0[i]
    }

    /// `true` iff some attribute is null.
    pub fn has_null(&self) -> bool {
        self.0.iter().any(Value::is_null)
    }

    /// `true` iff every attribute is null.
    pub fn all_null(&self) -> bool {
        !self.0.is_empty() && self.0.iter().all(Value::is_null)
    }

    /// 0-based positions holding null.
    pub fn null_positions(&self) -> Vec<usize> {
        self.0
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_null())
            .map(|(i, _)| i)
            .collect()
    }

    /// Projection onto the given 0-based positions (Definition 3's `Π_A`).
    ///
    /// Panics if a position is out of range — projections are always driven
    /// by a validated attribute set.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple(positions.iter().map(|&p| self.0[p]).collect())
    }

    /// A copy with position `i` replaced by `v`.
    pub fn with_value(&self, i: usize, v: Value) -> Tuple {
        let mut vals: Vec<Value> = self.0.to_vec();
        vals[i] = v;
        Tuple::new(vals)
    }

    /// Does this tuple *provide less or equal information* than `other`?
    ///
    /// Levene & Loizou's order on tuples with nulls (used by the paper in
    /// Example 9): for every attribute, `self[i] == other[i]` or
    /// `self[i]` is null. Tuples of different arity are incomparable.
    pub fn leq_information(&self, other: &Tuple) -> bool {
        self.arity() == other.arity()
            && self
                .0
                .iter()
                .zip(other.0.iter())
                .all(|(a, b)| a.is_null() || a == b)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl<V: Into<Value>, const N: usize> From<[V; N]> for Tuple {
    fn from(vs: [V; N]) -> Self {
        Tuple::new(vs.into_iter().map(Into::into))
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple::new(iter)
    }
}

/// Build a [`Tuple`] from a mixed list of values.
///
/// ```
/// use cqa_relational::{tuple, Value};
/// let t = tuple![1, "a", Value::Null];
/// assert_eq!(t.arity(), 3);
/// assert!(t.get(2).is_null());
/// ```
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{i, null, s};

    fn t(vs: Vec<Value>) -> Tuple {
        Tuple::new(vs)
    }

    #[test]
    fn arity_and_access() {
        let x = t(vec![i(1), s("a"), null()]);
        assert_eq!(x.arity(), 3);
        assert_eq!(x.get(0), &i(1));
        assert_eq!(x.get(2), &null());
    }

    #[test]
    fn null_introspection() {
        assert!(t(vec![i(1), null()]).has_null());
        assert!(!t(vec![i(1), s("b")]).has_null());
        assert!(t(vec![null(), null()]).all_null());
        assert!(!t(vec![null(), i(2)]).all_null());
        assert_eq!(t(vec![null(), i(2), null()]).null_positions(), vec![0, 2]);
    }

    #[test]
    fn projection() {
        let x = t(vec![s("a"), s("b"), s("c")]);
        assert_eq!(x.project(&[0, 2]), t(vec![s("a"), s("c")]));
        assert_eq!(x.project(&[2, 2]), t(vec![s("c"), s("c")]));
        assert_eq!(x.project(&[]), t(vec![]));
    }

    #[test]
    fn with_value_replaces_one_position() {
        let x = t(vec![s("a"), null()]);
        assert_eq!(x.with_value(1, s("b")), t(vec![s("a"), s("b")]));
        // original untouched
        assert!(x.get(1).is_null());
    }

    #[test]
    fn information_order_example9() {
        // (W04, 34) provides MORE information than (W04, null):
        let t1 = t(vec![s("W04"), i(34)]);
        let t2 = t(vec![s("W04"), null()]);
        assert!(t2.leq_information(&t1));
        assert!(!t1.leq_information(&t2));
        assert!(t1.leq_information(&t1));
        // different arity: incomparable
        assert!(!t2.leq_information(&t(vec![s("W04")])));
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = t(vec![i(1), i(2)]);
        let b = t(vec![i(1), i(3)]);
        let c = t(vec![null(), i(9)]);
        assert!(a < b);
        assert!(c < a); // null sorts first
    }

    #[test]
    fn display() {
        assert_eq!(t(vec![i(1), null(), s("x")]).to_string(), "(1, null, x)");
    }
}
