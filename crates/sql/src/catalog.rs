//! The catalog: schema + instance + constraints, the unit a parsed script
//! produces and the repair/CQA layers consume.

use cqa_constraints::IcSet;
use cqa_relational::{Instance, Schema};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Column types of the DDL subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColType {
    /// 64-bit integer (`INT`, `INTEGER`).
    Int,
    /// String (`TEXT`, `STRING`, `VARCHAR`).
    Text,
}

impl ColType {
    /// DDL spelling.
    pub fn ddl_name(self) -> &'static str {
        match self {
            ColType::Int => "INT",
            ColType::Text => "TEXT",
        }
    }
}

/// A parsed database: schema, contents, constraints and column types.
///
/// Every string constant the parsers minted is interned
/// ([`cqa_relational::Symbol`]), so instances built from SQL scripts get
/// integer-compare values on the repair/CQA hot paths like every other
/// construction route.
#[derive(Debug, Clone)]
pub struct Catalog {
    /// The schema.
    pub schema: Arc<Schema>,
    /// The instance built by the INSERT statements.
    pub instance: Instance,
    /// Every constraint (keys, foreign keys, NOT NULLs, checks, and
    /// free-form `CONSTRAINT` statements).
    pub constraints: IcSet,
    /// Declared column types per relation name.
    pub column_types: BTreeMap<String, Vec<ColType>>,
}

impl Catalog {
    /// Consistency under the paper's `|=_N` (convenience passthrough).
    pub fn is_consistent(&self) -> bool {
        cqa_constraints::is_consistent(&self.instance, &self.constraints)
    }
}
