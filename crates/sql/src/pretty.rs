//! Render a catalog back to DDL + CONSTRAINT text. The output re-parses
//! to an equivalent catalog (round-trip tested).

use crate::catalog::Catalog;
use cqa_relational::Value;
use std::fmt::Write as _;

/// Render the schema, data and free-form constraints as a script.
///
/// Column-level constraints that `parse_script` expanded (primary keys,
/// foreign keys, NOT NULLs, checks) are rendered as `CONSTRAINT`
/// statements in the general formula syntax — semantically identical,
/// structurally normalised.
pub fn catalog_to_script(catalog: &Catalog) -> String {
    let mut out = String::new();
    for (rel, decl) in catalog.schema.iter() {
        let cols: Vec<String> = decl
            .attrs()
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let ty = catalog.column_types[decl.name()][i].ddl_name();
                format!("{name} {ty}")
            })
            .collect();
        let _ = writeln!(out, "CREATE TABLE {} ({});", decl.name(), cols.join(", "));
        if !catalog.instance.relation(rel).is_empty() {
            let rows: Vec<String> = catalog
                .instance
                .relation(rel)
                .iter()
                .map(|t| {
                    let vals: Vec<String> = t.values().iter().map(literal).collect();
                    format!("({})", vals.join(", "))
                })
                .collect();
            let _ = writeln!(
                out,
                "INSERT INTO {} VALUES {};",
                decl.name(),
                rows.join(", ")
            );
        }
    }
    for con in catalog.constraints.constraints() {
        match con {
            cqa_constraints::Constraint::Tgd(ic) => {
                let _ = writeln!(
                    out,
                    "CONSTRAINT {}: {};",
                    ic.name(),
                    ic.display(&catalog.schema)
                );
            }
            cqa_constraints::Constraint::NotNull(nnc) => {
                let rel = catalog.schema.relation(nnc.rel);
                let _ = writeln!(
                    out,
                    "CONSTRAINT {}: not null {}({});",
                    nnc.name,
                    rel.name(),
                    rel.attrs()[nnc.position]
                );
            }
        }
    }
    out
}

fn literal(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Int(i) => i.to_string(),
        Value::Sym(s) => format!("'{}'", s.as_str().replace('\'', "''")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddl::parse_script;

    const SCRIPT: &str = "
        CREATE TABLE r (x TEXT PRIMARY KEY, y INT);
        CREATE TABLE s (u TEXT, v TEXT, FOREIGN KEY (v) REFERENCES r(x));
        INSERT INTO r VALUES ('a', 1), ('b', NULL);
        INSERT INTO s VALUES (NULL, 'a');
        CONSTRAINT chk: r(x, y) -> y > 0;
    ";

    #[test]
    fn roundtrip_preserves_catalog_semantics() {
        let cat1 = parse_script(SCRIPT).unwrap();
        let script2 = catalog_to_script(&cat1);
        let cat2 = parse_script(&script2).unwrap();
        assert_eq!(cat1.schema, cat2.schema);
        assert_eq!(cat1.instance, cat2.instance);
        assert_eq!(cat1.constraints.len(), cat2.constraints.len());
        // And a second round-trip is a fixpoint.
        let script3 = catalog_to_script(&cat2);
        assert_eq!(script2, script3);
    }

    #[test]
    fn string_escaping_survives() {
        let cat = parse_script(
            "CREATE TABLE r (x TEXT);
             INSERT INTO r VALUES ('it''s');",
        )
        .unwrap();
        let script = catalog_to_script(&cat);
        assert!(script.contains("'it''s'"));
        let cat2 = parse_script(&script).unwrap();
        assert_eq!(cat.instance, cat2.instance);
    }
}
