//! The SQL DDL/DML subset: `CREATE TABLE`, `INSERT INTO`, and free-form
//! `CONSTRAINT` statements.
//!
//! ```text
//! script      := statement*
//! statement   := create | insert | constraint
//! create      := "CREATE" "TABLE" name "(" item ("," item)* ")" ";"
//! item        := column | "PRIMARY" "KEY" "(" cols ")"
//!              | "FOREIGN" "KEY" "(" cols ")" "REFERENCES" name "(" cols ")"
//!              | "CHECK" "(" colname op literal ")"
//! column      := name type ["NOT" "NULL"] ["PRIMARY" "KEY"]
//! type        := "INT" | "INTEGER" | "TEXT" | "STRING" | "VARCHAR"
//! insert      := "INSERT" "INTO" name "VALUES" row ("," row)* ";"
//! row         := "(" literal ("," literal)* ")"
//! literal     := integer | 'string' | "NULL"
//! constraint  := "CONSTRAINT" name ":" <form-(1) formula or NOT NULL> ";"
//! ```
//!
//! The formula grammar is [`crate::logic`]'s. Statements execute in two
//! phases — all `CREATE TABLE`s build the schema first — so foreign keys
//! and `CONSTRAINT` statements may reference tables declared later.

use crate::catalog::{Catalog, ColType};
use crate::error::ParseError;
use crate::lexer::{lex, Cursor, Spanned, Token};
use crate::logic::parse_constraint_tokens;
use cqa_constraints::{builders, CmpOp, IcSet};
use cqa_relational::{Instance, Schema, Tuple, Value};
use std::collections::BTreeMap;

#[derive(Debug)]
struct CreateTable {
    name: String,
    columns: Vec<(String, ColType)>,
    not_nulls: Vec<String>,
    primary_key: Vec<String>,
    foreign_keys: Vec<(Vec<String>, String, Vec<String>)>,
    checks: Vec<(String, CmpOp, Value)>,
}

#[derive(Debug)]
enum Stmt {
    Create(CreateTable),
    Insert {
        table: String,
        rows: Vec<Vec<Value>>,
        line: usize,
        column: usize,
    },
    Constraint {
        name: String,
        tokens: Vec<Spanned>,
    },
}

/// Parse and execute a script, producing a [`Catalog`].
pub fn parse_script(input: &str) -> Result<Catalog, ParseError> {
    let mut cur = Cursor::new(lex(input)?);
    let mut stmts: Vec<Stmt> = Vec::new();
    while !cur.at_eof() {
        if cur.at_keyword("create") {
            stmts.push(Stmt::Create(parse_create(&mut cur)?));
        } else if cur.at_keyword("insert") {
            stmts.push(parse_insert(&mut cur)?);
        } else if cur.at_keyword("constraint") {
            cur.next();
            let name = cur.expect_ident()?;
            cur.expect(Token::Colon)?;
            // Collect tokens until `;` for phase-2 parsing.
            let mut tokens: Vec<Spanned> = Vec::new();
            while cur.peek().token != Token::Semi {
                if cur.at_eof() {
                    return Err(cur.error("unterminated CONSTRAINT statement (missing `;`)"));
                }
                tokens.push(cur.next());
            }
            let end = cur.next(); // the semicolon
            tokens.push(Spanned {
                token: Token::Eof,
                line: end.line,
                column: end.column,
            });
            stmts.push(Stmt::Constraint { name, tokens });
        } else {
            return Err(cur.error(format!(
                "expected CREATE, INSERT or CONSTRAINT, found {}",
                cur.peek().token.describe()
            )));
        }
    }

    // Phase 1: schema.
    let mut builder = Schema::builder();
    let mut column_types: BTreeMap<String, Vec<ColType>> = BTreeMap::new();
    for stmt in &stmts {
        if let Stmt::Create(ct) = stmt {
            builder = builder.relation(ct.name.clone(), ct.columns.iter().map(|(n, _)| n.clone()));
            column_types.insert(
                ct.name.clone(),
                ct.columns.iter().map(|(_, t)| *t).collect(),
            );
        }
    }
    let schema = builder
        .finish()
        .map_err(|e| ParseError::new(0, 0, e.to_string()))?
        .into_shared();

    // Phase 2: constraints and data.
    let mut constraints = IcSet::default();
    let mut instance = Instance::empty(schema.clone());
    let err0 = |msg: String| ParseError::new(0, 0, msg);
    for stmt in &stmts {
        match stmt {
            Stmt::Create(ct) => {
                let positions = |cols: &[String]| -> Result<Vec<usize>, ParseError> {
                    let rel = schema.rel_id(&ct.name).expect("declared");
                    cols.iter()
                        .map(|c| {
                            schema.relation(rel).position_of(c).ok_or_else(|| {
                                err0(format!("unknown column `{c}` of `{}`", ct.name))
                            })
                        })
                        .collect()
                };
                for col in &ct.not_nulls {
                    let pos = positions(std::slice::from_ref(col))?[0];
                    constraints.push(
                        builders::not_null(&schema, &ct.name, pos)
                            .map_err(|e| err0(e.to_string()))?,
                    );
                }
                if !ct.primary_key.is_empty() {
                    let key = positions(&ct.primary_key)?;
                    for c in builders::primary_key(&schema, &ct.name, &key)
                        .map_err(|e| err0(e.to_string()))?
                    {
                        constraints.push(c);
                    }
                }
                for (child_cols, parent, parent_cols) in &ct.foreign_keys {
                    let child = positions(child_cols)?;
                    let parent_rel = schema
                        .rel_id(parent)
                        .ok_or_else(|| err0(format!("unknown relation `{parent}`")))?;
                    let parent_positions: Vec<usize> = parent_cols
                        .iter()
                        .map(|c| {
                            schema
                                .relation(parent_rel)
                                .position_of(c)
                                .ok_or_else(|| err0(format!("unknown column `{c}` of `{parent}`")))
                        })
                        .collect::<Result<_, _>>()?;
                    constraints.push(
                        builders::foreign_key(&schema, &ct.name, &child, parent, &parent_positions)
                            .map_err(|e| err0(e.to_string()))?,
                    );
                }
                for (col, op, value) in &ct.checks {
                    let pos = positions(std::slice::from_ref(col))?[0];
                    constraints.push(
                        builders::check_column(&schema, &ct.name, pos, *op, *value)
                            .map_err(|e| err0(e.to_string()))?,
                    );
                }
            }
            Stmt::Insert {
                table,
                rows,
                line,
                column,
            } => {
                let rel = schema.rel_id(table).ok_or_else(|| {
                    ParseError::new(*line, *column, format!("unknown table `{table}`"))
                })?;
                let types = &column_types[table];
                for row in rows {
                    if row.len() != types.len() {
                        return Err(ParseError::new(
                            *line,
                            *column,
                            format!(
                                "INSERT into `{table}` has {} values, table has {} columns",
                                row.len(),
                                types.len()
                            ),
                        ));
                    }
                    for (i, (val, ty)) in row.iter().zip(types).enumerate() {
                        let ok = matches!(
                            (val, ty),
                            (Value::Null, _)
                                | (Value::Int(_), ColType::Int)
                                | (Value::Sym(_), ColType::Text)
                        );
                        if !ok {
                            return Err(ParseError::new(
                                *line,
                                *column,
                                format!(
                                    "column {} of `{table}` is {}, got {}",
                                    i + 1,
                                    ty.ddl_name(),
                                    val.type_name()
                                ),
                            ));
                        }
                    }
                    instance
                        .insert(rel, Tuple::new(row.clone()))
                        .map_err(|e| ParseError::new(*line, *column, e.to_string()))?;
                }
            }
            Stmt::Constraint { name, tokens } => {
                let mut sub = Cursor::new(tokens.clone());
                let con = parse_constraint_tokens(&schema, name, &mut sub)?;
                if !sub.at_eof() {
                    return Err(sub.error("trailing input in CONSTRAINT statement"));
                }
                constraints.push(con);
            }
        }
    }
    Ok(Catalog {
        schema,
        instance,
        constraints,
        column_types,
    })
}

fn parse_create(cur: &mut Cursor) -> Result<CreateTable, ParseError> {
    cur.expect_keyword("create")?;
    cur.expect_keyword("table")?;
    let name = cur.expect_ident()?;
    cur.expect(Token::LParen)?;
    let mut ct = CreateTable {
        name,
        columns: Vec::new(),
        not_nulls: Vec::new(),
        primary_key: Vec::new(),
        foreign_keys: Vec::new(),
        checks: Vec::new(),
    };
    loop {
        if cur.at_keyword("primary") {
            cur.next();
            cur.expect_keyword("key")?;
            if !ct.primary_key.is_empty() {
                return Err(cur.error("duplicate PRIMARY KEY clause"));
            }
            ct.primary_key = parse_name_list(cur)?;
        } else if cur.at_keyword("foreign") {
            cur.next();
            cur.expect_keyword("key")?;
            let child = parse_name_list(cur)?;
            cur.expect_keyword("references")?;
            let parent = cur.expect_ident()?;
            let parent_cols = parse_name_list(cur)?;
            ct.foreign_keys.push((child, parent, parent_cols));
        } else if cur.at_keyword("check") {
            cur.next();
            cur.expect(Token::LParen)?;
            let col = cur.expect_ident()?;
            let op = super::logic::parse_op(cur)?;
            let value = parse_literal(cur)?;
            if value.is_null() {
                return Err(cur.error("CHECK against NULL is not meaningful; use NOT NULL"));
            }
            cur.expect(Token::RParen)?;
            ct.checks.push((col, op, value));
        } else {
            // column definition
            let col = cur.expect_ident()?;
            let ty = cur.expect_ident()?;
            let ty = match ty.to_ascii_uppercase().as_str() {
                "INT" | "INTEGER" => ColType::Int,
                "TEXT" | "STRING" | "VARCHAR" => ColType::Text,
                other => return Err(cur.error(format!("unknown column type `{other}`"))),
            };
            ct.columns.push((col.clone(), ty));
            loop {
                if cur.at_keyword("not") {
                    cur.next();
                    cur.expect_keyword("null")?;
                    ct.not_nulls.push(col.clone());
                } else if cur.at_keyword("primary") {
                    cur.next();
                    cur.expect_keyword("key")?;
                    if !ct.primary_key.is_empty() {
                        return Err(cur.error("duplicate PRIMARY KEY clause"));
                    }
                    ct.primary_key = vec![col.clone()];
                } else {
                    break;
                }
            }
        }
        if cur.eat(&Token::Comma) {
            continue;
        }
        cur.expect(Token::RParen)?;
        break;
    }
    cur.expect(Token::Semi)?;
    if ct.columns.is_empty() {
        return Err(cur.error("table needs at least one column"));
    }
    Ok(ct)
}

fn parse_name_list(cur: &mut Cursor) -> Result<Vec<String>, ParseError> {
    cur.expect(Token::LParen)?;
    let mut names = vec![cur.expect_ident()?];
    while cur.eat(&Token::Comma) {
        names.push(cur.expect_ident()?);
    }
    cur.expect(Token::RParen)?;
    Ok(names)
}

fn parse_literal(cur: &mut Cursor) -> Result<Value, ParseError> {
    match cur.peek().token.clone() {
        Token::Int(v) => {
            cur.next();
            Ok(Value::Int(v))
        }
        Token::Str(s) => {
            cur.next();
            Ok(Value::str(s))
        }
        Token::Ident(id) if id.eq_ignore_ascii_case("null") => {
            cur.next();
            Ok(Value::Null)
        }
        other => Err(cur.error(format!("expected a literal, found {}", other.describe()))),
    }
}

fn parse_insert(cur: &mut Cursor) -> Result<Stmt, ParseError> {
    let at = cur.peek().clone();
    cur.expect_keyword("insert")?;
    cur.expect_keyword("into")?;
    let table = cur.expect_ident()?;
    cur.expect_keyword("values")?;
    let mut rows = Vec::new();
    loop {
        cur.expect(Token::LParen)?;
        let mut row = vec![parse_literal(cur)?];
        while cur.eat(&Token::Comma) {
            row.push(parse_literal(cur)?);
        }
        cur.expect(Token::RParen)?;
        rows.push(row);
        if !cur.eat(&Token::Comma) {
            break;
        }
    }
    cur.expect(Token::Semi)?;
    Ok(Stmt::Insert {
        table,
        rows,
        line: at.line,
        column: at.column,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Example 19's database as DDL.
    const EXAMPLE19: &str = "
        CREATE TABLE r (x TEXT PRIMARY KEY, y TEXT);
        CREATE TABLE s (u TEXT, v TEXT, FOREIGN KEY (v) REFERENCES r(x));
        INSERT INTO r VALUES ('a', 'b'), ('a', 'c');
        INSERT INTO s VALUES ('e', 'f'), (NULL, 'a');
    ";

    #[test]
    fn example19_script_parses() {
        let cat = parse_script(EXAMPLE19).unwrap();
        assert_eq!(cat.schema.len(), 2);
        assert_eq!(cat.instance.len(), 4);
        // PK → 1 FD + 1 NNC; FK → 1 RIC: 3 constraints.
        assert_eq!(cat.constraints.len(), 3);
        assert!(!cat.is_consistent());
    }

    #[test]
    fn repairs_of_parsed_catalog_match_example19() {
        let cat = parse_script(EXAMPLE19).unwrap();
        let reps = cqa_core::repairs(&cat.instance, &cat.constraints).unwrap();
        assert_eq!(reps.len(), 4);
    }

    #[test]
    fn table_level_pk_and_check() {
        let cat = parse_script(
            "CREATE TABLE emp (id INT, name TEXT, salary INT,
                PRIMARY KEY (id), CHECK (salary > 100));
             INSERT INTO emp VALUES (32, NULL, 1000), (41, 'Paul', NULL);",
        )
        .unwrap();
        // PK: 2 FDs + 1 NNC; CHECK: 1 → 4 constraints.
        assert_eq!(cat.constraints.len(), 4);
        assert!(cat.is_consistent()); // Example 6 verdict
    }

    #[test]
    fn forward_references_allowed() {
        let cat = parse_script(
            "CREATE TABLE s (v TEXT, FOREIGN KEY (v) REFERENCES r(x));
             CREATE TABLE r (x TEXT, y TEXT);",
        )
        .unwrap();
        assert_eq!(cat.constraints.len(), 1);
    }

    #[test]
    fn constraint_statements() {
        let cat = parse_script(
            "CREATE TABLE p (a TEXT, b TEXT);
             CREATE TABLE q (x TEXT);
             CONSTRAINT incl: p(x, y) -> q(x);
             CONSTRAINT nn: not null p(a);",
        )
        .unwrap();
        assert_eq!(cat.constraints.len(), 2);
        assert!(cat.constraints.constraints()[0].as_ic().is_some());
        assert!(cat.constraints.constraints()[1].as_nnc().is_some());
    }

    #[test]
    fn type_checking_on_insert() {
        let err = parse_script(
            "CREATE TABLE r (x INT);
             INSERT INTO r VALUES ('oops');",
        )
        .unwrap_err();
        assert!(err.message.contains("INT"));
        let err2 = parse_script(
            "CREATE TABLE r (x INT);
             INSERT INTO r VALUES (1, 2);",
        )
        .unwrap_err();
        assert!(err2.message.contains("columns"));
    }

    #[test]
    fn nulls_insert_fine_and_duplicates_collapse() {
        let cat = parse_script(
            "CREATE TABLE r (x INT, y TEXT);
             INSERT INTO r VALUES (1, NULL), (1, NULL);",
        )
        .unwrap();
        assert_eq!(cat.instance.len(), 1); // set semantics (Example 7)
    }

    #[test]
    fn ddl_errors() {
        assert!(parse_script("CREATE TABLE r ();").is_err());
        assert!(parse_script("CREATE TABLE r (x BLOB);").is_err());
        assert!(parse_script("INSERT INTO missing VALUES (1);").is_err());
        assert!(parse_script("CREATE TABLE r (x INT, PRIMARY KEY (zzz));").is_err());
        assert!(
            parse_script("CREATE TABLE r (x INT PRIMARY KEY, y INT, PRIMARY KEY (y));").is_err()
        );
        assert!(parse_script("CONSTRAINT c: p(x) -> false").is_err()); // no `;`
        assert!(parse_script("DROP TABLE r;").is_err());
        assert!(parse_script("CREATE TABLE r (x INT, CHECK (x > NULL));").is_err());
    }
}
