//! Tokeniser shared by the DDL and logic parsers.

use crate::error::ParseError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword (keywords are matched case-insensitively by
    /// the parsers; the original spelling is preserved).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    /// Raw text at this stage: the DDL/logic parsers intern it into the
    /// global symbol table when they mint a `Value` constant.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `:-`
    Implies,
    /// `->`
    Arrow,
    /// `|`
    Pipe,
    /// `:`
    Colon,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Leq,
    /// `>`
    Gt,
    /// `>=`
    Geq,
    /// End of input.
    Eof,
}

impl Token {
    /// Render for error messages.
    pub fn describe(&self) -> String {
        match self {
            Token::Ident(s) => format!("identifier `{s}`"),
            Token::Int(v) => format!("integer `{v}`"),
            Token::Str(s) => format!("string '{s}'"),
            Token::LParen => "`(`".into(),
            Token::RParen => "`)`".into(),
            Token::Comma => "`,`".into(),
            Token::Semi => "`;`".into(),
            Token::Dot => "`.`".into(),
            Token::Implies => "`:-`".into(),
            Token::Arrow => "`->`".into(),
            Token::Pipe => "`|`".into(),
            Token::Colon => "`:`".into(),
            Token::Eq => "`=`".into(),
            Token::Neq => "`<>`".into(),
            Token::Lt => "`<`".into(),
            Token::Leq => "`<=`".into(),
            Token::Gt => "`>`".into(),
            Token::Geq => "`>=`".into(),
            Token::Eof => "end of input".into(),
        }
    }
}

/// A token plus its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
}

/// Tokenise the input. `--` starts a line comment.
pub fn lex(input: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    let mut line = 1usize;
    let mut col = 1usize;
    macro_rules! push {
        ($tok:expr, $l:expr, $c:expr) => {
            out.push(Spanned {
                token: $tok,
                line: $l,
                column: $c,
            })
        };
    }
    while i < chars.len() {
        let (l, c) = (line, col);
        let ch = chars[i];
        let advance = |i: &mut usize, col: &mut usize| {
            *i += 1;
            *col += 1;
        };
        match ch {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => advance(&mut i, &mut col),
            '-' if chars.get(i + 1) == Some(&'-') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '-' if chars.get(i + 1) == Some(&'>') => {
                i += 2;
                col += 2;
                push!(Token::Arrow, l, c);
            }
            '-' if chars
                .get(i + 1)
                .map(|d| d.is_ascii_digit())
                .unwrap_or(false) =>
            {
                let start = i;
                i += 1;
                col += 1;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    advance(&mut i, &mut col);
                }
                let text: String = chars[start..i].iter().collect();
                let value = text
                    .parse()
                    .map_err(|_| ParseError::new(l, c, format!("bad integer `{text}`")))?;
                push!(Token::Int(value), l, c);
            }
            ':' if chars.get(i + 1) == Some(&'-') => {
                i += 2;
                col += 2;
                push!(Token::Implies, l, c);
            }
            ':' => {
                advance(&mut i, &mut col);
                push!(Token::Colon, l, c);
            }
            '(' => {
                advance(&mut i, &mut col);
                push!(Token::LParen, l, c);
            }
            ')' => {
                advance(&mut i, &mut col);
                push!(Token::RParen, l, c);
            }
            ',' => {
                advance(&mut i, &mut col);
                push!(Token::Comma, l, c);
            }
            ';' => {
                advance(&mut i, &mut col);
                push!(Token::Semi, l, c);
            }
            '.' => {
                advance(&mut i, &mut col);
                push!(Token::Dot, l, c);
            }
            '|' => {
                advance(&mut i, &mut col);
                push!(Token::Pipe, l, c);
            }
            '=' => {
                advance(&mut i, &mut col);
                push!(Token::Eq, l, c);
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                i += 2;
                col += 2;
                push!(Token::Neq, l, c);
            }
            '<' if chars.get(i + 1) == Some(&'>') => {
                i += 2;
                col += 2;
                push!(Token::Neq, l, c);
            }
            '<' if chars.get(i + 1) == Some(&'=') => {
                i += 2;
                col += 2;
                push!(Token::Leq, l, c);
            }
            '<' => {
                advance(&mut i, &mut col);
                push!(Token::Lt, l, c);
            }
            '>' if chars.get(i + 1) == Some(&'=') => {
                i += 2;
                col += 2;
                push!(Token::Geq, l, c);
            }
            '>' => {
                advance(&mut i, &mut col);
                push!(Token::Gt, l, c);
            }
            '\'' => {
                i += 1;
                col += 1;
                let mut text = String::new();
                loop {
                    match chars.get(i) {
                        None => return Err(ParseError::new(l, c, "unterminated string")),
                        Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                            text.push('\'');
                            i += 2;
                            col += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            col += 1;
                            break;
                        }
                        Some('\n') => return Err(ParseError::new(l, c, "unterminated string")),
                        Some(other) => {
                            text.push(*other);
                            i += 1;
                            col += 1;
                        }
                    }
                }
                push!(Token::Str(text), l, c);
            }
            d if d.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    advance(&mut i, &mut col);
                }
                let text: String = chars[start..i].iter().collect();
                let value = text
                    .parse()
                    .map_err(|_| ParseError::new(l, c, format!("bad integer `{text}`")))?;
                push!(Token::Int(value), l, c);
            }
            a if a.is_ascii_alphabetic() || a == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    advance(&mut i, &mut col);
                }
                push!(Token::Ident(chars[start..i].iter().collect()), l, c);
            }
            other => {
                return Err(ParseError::new(
                    l,
                    c,
                    format!("unexpected character `{other}`"),
                ))
            }
        }
    }
    out.push(Spanned {
        token: Token::Eof,
        line,
        column: col,
    });
    Ok(out)
}

/// Cursor over a token stream, shared by the parsers.
pub struct Cursor {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Cursor {
    /// Wrap a token stream.
    pub fn new(tokens: Vec<Spanned>) -> Self {
        Cursor { tokens, pos: 0 }
    }

    /// Current token.
    pub fn peek(&self) -> &Spanned {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    /// Advance and return the token.
    #[allow(clippy::should_implement_trait)] // a cursor, not an iterator
    pub fn next(&mut self) -> Spanned {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    /// Error at the current position.
    pub fn error(&self, message: impl Into<String>) -> ParseError {
        let at = self.peek();
        ParseError::new(at.line, at.column, message)
    }

    /// Consume a specific token or fail.
    pub fn expect(&mut self, token: Token) -> Result<(), ParseError> {
        if self.peek().token == token {
            self.next();
            Ok(())
        } else {
            Err(self.error(format!(
                "expected {}, found {}",
                token.describe(),
                self.peek().token.describe()
            )))
        }
    }

    /// Consume an identifier (any spelling) or fail.
    pub fn expect_ident(&mut self) -> Result<String, ParseError> {
        match &self.peek().token {
            Token::Ident(s) => {
                let s = s.clone();
                self.next();
                Ok(s)
            }
            other => Err(self.error(format!("expected identifier, found {}", other.describe()))),
        }
    }

    /// Consume a keyword (case-insensitive) or fail.
    pub fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match &self.peek().token {
            Token::Ident(s) if s.eq_ignore_ascii_case(kw) => {
                self.next();
                Ok(())
            }
            other => Err(self.error(format!("expected `{kw}`, found {}", other.describe()))),
        }
    }

    /// Is the current token the given keyword?
    pub fn at_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().token, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    /// Consume the keyword if present.
    pub fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.next();
            true
        } else {
            false
        }
    }

    /// Consume the token if present.
    pub fn eat(&mut self, token: &Token) -> bool {
        if &self.peek().token == token {
            self.next();
            true
        } else {
            false
        }
    }

    /// At end of input?
    pub fn at_eof(&self) -> bool {
        self.peek().token == Token::Eof
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<Token> {
        lex(input).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn keywords_and_punctuation() {
        let toks = kinds("CREATE TABLE r (x INT);");
        assert_eq!(
            toks,
            vec![
                Token::Ident("CREATE".into()),
                Token::Ident("TABLE".into()),
                Token::Ident("r".into()),
                Token::LParen,
                Token::Ident("x".into()),
                Token::Ident("INT".into()),
                Token::RParen,
                Token::Semi,
                Token::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds("'it''s'"),
            vec![Token::Str("it's".into()), Token::Eof]
        );
    }

    #[test]
    fn numbers_including_negative() {
        assert_eq!(
            kinds("42 -7"),
            vec![Token::Int(42), Token::Int(-7), Token::Eof]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("= != <> < <= > >= -> :- : | ."),
            vec![
                Token::Eq,
                Token::Neq,
                Token::Neq,
                Token::Lt,
                Token::Leq,
                Token::Gt,
                Token::Geq,
                Token::Arrow,
                Token::Implies,
                Token::Colon,
                Token::Pipe,
                Token::Dot,
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a -- comment to end of line\nb"),
            vec![
                Token::Ident("a".into()),
                Token::Ident("b".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn errors_carry_positions() {
        let err = lex("ok\n  @").unwrap_err();
        assert_eq!((err.line, err.column), (2, 3));
        let err2 = lex("'unterminated").unwrap_err();
        assert!(err2.message.contains("unterminated"));
    }

    #[test]
    fn cursor_basics() {
        let mut cur = Cursor::new(lex("a, b").unwrap());
        assert_eq!(cur.expect_ident().unwrap(), "a");
        assert!(cur.eat(&Token::Comma));
        assert!(cur.at_keyword("B"));
        assert!(cur.expect_keyword("b").is_ok());
        assert!(cur.at_eof());
        // Cursor never advances past EOF.
        cur.next();
        assert!(cur.at_eof());
    }
}
