//! Parse errors with source positions.

use std::fmt;

/// A parse (or catalog-application) error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    /// Build an error at a position.
    pub fn new(line: usize, column: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            column,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_position() {
        let e = ParseError::new(3, 14, "unexpected token");
        assert_eq!(e.to_string(), "parse error at 3:14: unexpected token");
    }
}
