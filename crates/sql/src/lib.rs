#![warn(missing_docs)]

//! # cqa-sql
//!
//! Text front-end for the *nullcqa* workspace: a small SQL DDL/DML subset
//! plus a first-order rule syntax for integrity constraints and queries.
//!
//! The paper's machinery starts from a schema, an instance and a set of
//! constraints; this crate lets all three be written as text:
//!
//! ```text
//! CREATE TABLE r (x TEXT NOT NULL, y TEXT, PRIMARY KEY (x));
//! CREATE TABLE s (u TEXT, v TEXT, FOREIGN KEY (v) REFERENCES r(x));
//! INSERT INTO r VALUES ('a', 'b'), ('a', 'c');
//! INSERT INTO s VALUES ('e', 'f'), (NULL, 'a');
//! CONSTRAINT audit: r(x, y) -> y <> 'z';
//! ```
//!
//! and queries in Datalog style:
//!
//! ```text
//! q(x) :- r(x, y), not s(y, y), y <> 'b'.
//! ```
//!
//! The DDL subset covers exactly the constraint classes of the paper's
//! Section 3 (primary keys, foreign keys, NOT NULL, check constraints);
//! the `CONSTRAINT` statement covers the general form (1). Everything
//! parses into the `cqa-relational` / `cqa-constraints` / `cqa-core`
//! types — this crate owns no semantics.

pub mod catalog;
pub mod ddl;
pub mod error;
pub mod lexer;
pub mod logic;
pub mod pretty;

pub use catalog::Catalog;
pub use ddl::parse_script;
pub use error::ParseError;
pub use logic::{parse_constraint, parse_query};
