//! First-order rule syntax: constraints of the paper's form (1) and
//! Datalog-style queries.
//!
//! Constraint grammar (whitespace-insensitive, `--` comments):
//!
//! ```text
//! constraint := body "->" consequent
//! body       := atom ("," atom)*
//! consequent := "false"
//!             | ["exists" var ("," var)* ":"] disjunct ("|" disjunct)*
//! disjunct   := atom | term op term
//! atom       := relname "(" term ("," term)* ")"
//! term       := var | integer | 'string'
//! op         := "=" | "<>" | "!=" | "<" | "<=" | ">" | ">="
//! notnull    := "not" "null" relname "(" colname ")"
//! ```
//!
//! Query grammar: one or more rules `name(vars) :- literal, … .` where a
//! literal is an atom, `not atom`, or a comparison; rules sharing the name
//! form a union.

use crate::error::ParseError;
use crate::lexer::{lex, Cursor, Token};
use cqa_constraints::{Constraint, Ic, IcBuilder, Nnc, TermSpec};
use cqa_core::{ConjunctiveQuery, Query};
use cqa_relational::{Schema, Value};
use std::collections::BTreeMap;

/// Comparison operators shared by both grammars.
pub(crate) fn parse_op(cur: &mut Cursor) -> Result<cqa_constraints::CmpOp, ParseError> {
    use cqa_constraints::CmpOp::*;
    let op = match cur.peek().token {
        Token::Eq => Eq,
        Token::Neq => Neq,
        Token::Lt => Lt,
        Token::Leq => Leq,
        Token::Gt => Gt,
        Token::Geq => Geq,
        _ => return Err(cur.error("expected a comparison operator")),
    };
    cur.next();
    Ok(op)
}

fn parse_term(cur: &mut Cursor) -> Result<TermSpec, ParseError> {
    match cur.peek().token.clone() {
        Token::Ident(name) => {
            cur.next();
            if name.eq_ignore_ascii_case("null") {
                Err(cur.error("`null` cannot appear in a constraint; use `not null r(col)`"))
            } else {
                Ok(TermSpec::Var(name))
            }
        }
        Token::Int(v) => {
            cur.next();
            Ok(TermSpec::Const(Value::Int(v)))
        }
        Token::Str(s) => {
            cur.next();
            Ok(TermSpec::Const(Value::str(s)))
        }
        other => Err(cur.error(format!("expected a term, found {}", other.describe()))),
    }
}

fn parse_terms(cur: &mut Cursor) -> Result<Vec<TermSpec>, ParseError> {
    cur.expect(Token::LParen)?;
    let mut terms = vec![parse_term(cur)?];
    while cur.eat(&Token::Comma) {
        terms.push(parse_term(cur)?);
    }
    cur.expect(Token::RParen)?;
    Ok(terms)
}

/// Parse one constraint from text.
pub fn parse_constraint(
    schema: &Schema,
    name: &str,
    input: &str,
) -> Result<Constraint, ParseError> {
    let mut cur = Cursor::new(lex(input)?);
    let con = parse_constraint_tokens(schema, name, &mut cur)?;
    if !cur.at_eof() {
        return Err(cur.error(format!(
            "trailing input after constraint: {}",
            cur.peek().token.describe()
        )));
    }
    Ok(con)
}

/// Parse a constraint from an existing token cursor (used by the DDL
/// parser for `CONSTRAINT name: …;` statements).
pub fn parse_constraint_tokens(
    schema: &Schema,
    name: &str,
    cur: &mut Cursor,
) -> Result<Constraint, ParseError> {
    // NOT NULL form.
    if cur.at_keyword("not") {
        cur.next();
        cur.expect_keyword("null")?;
        let rel = cur.expect_ident()?;
        cur.expect(Token::LParen)?;
        let col = cur.expect_ident()?;
        cur.expect(Token::RParen)?;
        let rel_id = schema
            .rel_id(&rel)
            .ok_or_else(|| cur.error(format!("unknown relation `{rel}`")))?;
        let position = schema
            .relation(rel_id)
            .position_of(&col)
            .ok_or_else(|| cur.error(format!("unknown column `{col}` of `{rel}`")))?;
        let nnc = Nnc::new(schema, name, &rel, position).map_err(|e| cur.error(e.to_string()))?;
        return Ok(Constraint::NotNull(nnc));
    }

    let mut builder = Ic::builder(schema, name);
    // Body atoms.
    loop {
        let rel = cur.expect_ident()?;
        let terms = parse_terms(cur)?;
        builder = builder.body_atom(&rel, terms);
        if !cur.eat(&Token::Comma) {
            break;
        }
    }
    cur.expect(Token::Arrow)?;
    // Consequent.
    if cur.eat_keyword("false") {
        return finish(builder, cur);
    }
    // Optional `exists v1, v2:` — the existential variables are inferred
    // anyway; the clause is validated for consistency.
    let mut declared_exists: Vec<String> = Vec::new();
    if cur.eat_keyword("exists") {
        declared_exists.push(cur.expect_ident()?);
        while cur.eat(&Token::Comma) {
            declared_exists.push(cur.expect_ident()?);
        }
        cur.expect(Token::Colon)?;
    }
    loop {
        // Disjunct: atom or comparison. An identifier followed by `(` is
        // an atom; anything else is a comparison.
        let is_atom = matches!(&cur.peek().token, Token::Ident(id)
            if !id.eq_ignore_ascii_case("false"))
            && {
                // lookahead: clone a cursor? cheap: peek after ident needs
                // duplication; instead parse ident, then decide.
                true
            };
        if is_atom {
            let ident = cur.expect_ident()?;
            if cur.peek().token == Token::LParen {
                let terms = parse_terms(cur)?;
                builder = builder.head_atom(&ident, terms);
            } else {
                // comparison with variable lhs.
                let op = parse_op(cur)?;
                let rhs = parse_term(cur)?;
                builder = builder.builtin(TermSpec::Var(ident), op, rhs);
            }
        } else {
            let lhs = parse_term(cur)?;
            let op = parse_op(cur)?;
            let rhs = parse_term(cur)?;
            builder = builder.builtin(lhs, op, rhs);
        }
        if !cur.eat(&Token::Pipe) {
            break;
        }
    }
    let con = finish(builder, cur)?;
    // Validate a declared exists-clause against the inferred set.
    if !declared_exists.is_empty() {
        if let Constraint::Tgd(ic) = &con {
            let inferred: Vec<&str> = ic
                .existential_vars()
                .iter()
                .map(|v| ic.var_name(*v))
                .collect();
            for d in &declared_exists {
                if !inferred.contains(&d.as_str()) {
                    return Err(cur.error(format!(
                        "`exists {d}` declared but `{d}` also occurs in the body"
                    )));
                }
            }
        }
    }
    Ok(con)
}

fn finish(builder: IcBuilder<'_>, cur: &Cursor) -> Result<Constraint, ParseError> {
    builder
        .finish()
        .map(Constraint::Tgd)
        .map_err(|e| cur.error(e.to_string()))
}

/// Parse a query program: one or more Datalog rules; rules with the same
/// head predicate form a union. Returns the query named `name` (or the
/// only query if `name` is `None`).
pub fn parse_query(schema: &Schema, input: &str) -> Result<Query, ParseError> {
    let mut cur = Cursor::new(lex(input)?);
    let mut by_name: BTreeMap<String, Vec<ConjunctiveQuery>> = BTreeMap::new();
    let mut order: Vec<String> = Vec::new();
    while !cur.at_eof() {
        let (name, cq) = parse_rule(schema, &mut cur)?;
        if !by_name.contains_key(&name) {
            order.push(name.clone());
        }
        by_name.entry(name).or_default().push(cq);
    }
    if order.is_empty() {
        return Err(cur.error("no query rules found"));
    }
    if order.len() > 1 {
        return Err(cur.error(format!(
            "multiple query predicates defined ({}); write one query per call",
            order.join(", ")
        )));
    }
    let disjuncts = by_name.remove(&order[0]).expect("present");
    Query::union(disjuncts).map_err(|e| cur.error(e.to_string()))
}

fn parse_rule(schema: &Schema, cur: &mut Cursor) -> Result<(String, ConjunctiveQuery), ParseError> {
    let name = cur.expect_ident()?;
    cur.expect(Token::LParen)?;
    let mut head_vars: Vec<String> = Vec::new();
    if cur.peek().token != Token::RParen {
        head_vars.push(cur.expect_ident()?);
        while cur.eat(&Token::Comma) {
            head_vars.push(cur.expect_ident()?);
        }
    }
    cur.expect(Token::RParen)?;
    cur.expect(Token::Implies)?;
    let mut builder = ConjunctiveQuery::builder(schema, name.clone(), head_vars);
    loop {
        if cur.eat_keyword("not") {
            let rel = cur.expect_ident()?;
            let terms = parse_terms(cur)?;
            builder = builder.not_atom(&rel, terms);
        } else {
            let ident_or_term = cur.peek().token.clone();
            match ident_or_term {
                Token::Ident(id) => {
                    cur.next();
                    if cur.peek().token == Token::LParen {
                        let terms = parse_terms(cur)?;
                        builder = builder.atom(&id, terms);
                    } else {
                        let op = parse_op(cur)?;
                        let rhs = parse_term(cur)?;
                        builder = builder.cmp(TermSpec::Var(id), op, rhs);
                    }
                }
                _ => {
                    let lhs = parse_term(cur)?;
                    let op = parse_op(cur)?;
                    let rhs = parse_term(cur)?;
                    builder = builder.cmp(lhs, op, rhs);
                }
            }
        }
        if cur.eat(&Token::Comma) {
            continue;
        }
        cur.expect(Token::Dot)?;
        break;
    }
    let cq = builder.finish().map_err(|e| cur.error(e.to_string()))?;
    Ok((name, cq))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_constraints::classify::{classify, IcClass};

    fn schema() -> Schema {
        Schema::builder()
            .relation("p", ["a", "b", "c"])
            .relation("r", ["x", "y"])
            .relation("t", ["u"])
            .finish()
            .unwrap()
    }

    #[test]
    fn parse_universal_constraint() {
        let sc = schema();
        let con = parse_constraint(&sc, "u1", "p(x, y, z) -> r(x, y)").unwrap();
        let ic = con.as_ic().unwrap();
        assert_eq!(classify(ic), IcClass::Universal);
        assert_eq!(ic.display(&sc).to_string(), "p(x, y, z) -> r(x, y)");
    }

    #[test]
    fn parse_referential_with_exists() {
        let sc = schema();
        let con = parse_constraint(&sc, "fk", "r(x, y) -> exists w: p(x, y, w)").unwrap();
        let ic = con.as_ic().unwrap();
        assert_eq!(classify(ic), IcClass::Referential);
        // exists clause optional:
        let con2 = parse_constraint(&sc, "fk", "r(x, y) -> p(x, y, w)").unwrap();
        assert_eq!(con2.as_ic().unwrap().existential_vars().len(), 1);
    }

    #[test]
    fn parse_denial_and_checks() {
        let sc = schema();
        let den = parse_constraint(&sc, "d", "t(x), r(x, y) -> false").unwrap();
        assert!(cqa_constraints::classify::is_denial(den.as_ic().unwrap()));
        let chk = parse_constraint(&sc, "c", "r(x, y) -> y > 3 | y = 0").unwrap();
        assert_eq!(chk.as_ic().unwrap().builtins().len(), 2);
        let fd = parse_constraint(&sc, "fd", "r(x, y), r(x, z) -> y = z").unwrap();
        assert_eq!(fd.as_ic().unwrap().body().len(), 2);
    }

    #[test]
    fn parse_disjunctive_head_and_constants() {
        let sc = schema();
        let con = parse_constraint(&sc, "m", "p(x, y, z) -> r(x, 'lit') | t(x) | y <> 5").unwrap();
        let ic = con.as_ic().unwrap();
        assert_eq!(ic.head().len(), 2);
        assert_eq!(ic.builtins().len(), 1);
    }

    #[test]
    fn parse_not_null() {
        let sc = schema();
        let con = parse_constraint(&sc, "nn", "not null r(y)").unwrap();
        let nnc = con.as_nnc().unwrap();
        assert_eq!(nnc.position, 1);
    }

    #[test]
    fn constraint_errors() {
        let sc = schema();
        assert!(parse_constraint(&sc, "e", "z(x) -> false").is_err()); // unknown rel
        assert!(parse_constraint(&sc, "e", "r(x) -> false").is_err()); // arity
        assert!(parse_constraint(&sc, "e", "r(x, y) ->").is_err()); // empty consequent
        assert!(parse_constraint(&sc, "e", "r(x, null) -> false").is_err()); // null term
        assert!(parse_constraint(&sc, "e", "not null r(zzz)").is_err()); // bad column
        assert!(parse_constraint(&sc, "e", "r(x, y) -> t(x) extra").is_err()); // trailing
                                                                               // declared exists var that is actually universal:
        assert!(parse_constraint(&sc, "e", "r(x, y) -> exists x: p(x, y, w)").is_err());
    }

    #[test]
    fn parse_simple_query() {
        let sc = schema();
        let q = parse_query(&sc, "q(x) :- r(x, y), not t(y), y <> 'b'.").unwrap();
        assert_eq!(q.arity(), 1);
        assert_eq!(q.disjuncts().len(), 1);
    }

    #[test]
    fn parse_union_query() {
        let sc = schema();
        let q = parse_query(&sc, "q(x) :- r(x, y). q(x) :- t(x).").unwrap();
        assert_eq!(q.disjuncts().len(), 2);
    }

    #[test]
    fn parse_boolean_query() {
        let sc = schema();
        let q = parse_query(&sc, "yes() :- t('a').").unwrap();
        assert!(q.is_boolean());
    }

    #[test]
    fn query_errors() {
        let sc = schema();
        assert!(parse_query(&sc, "").is_err());
        assert!(parse_query(&sc, "q(x) :- r(x, y). p(x) :- t(x).").is_err()); // two predicates
        assert!(parse_query(&sc, "q(z) :- r(x, y).").is_err()); // unsafe head
        assert!(parse_query(&sc, "q(x) :- r(x, y)").is_err()); // missing dot
    }

    #[test]
    fn query_with_constants_and_comparisons() {
        let sc = schema();
        let q = parse_query(&sc, "q(x) :- p(x, 'k', z), z >= 10, x != 0.").unwrap();
        assert_eq!(q.disjuncts()[0].arity(), 1);
    }
}
