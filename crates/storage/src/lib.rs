//! # cqa-storage — WAL + snapshot durability
//!
//! Crash-safe persistence for the nullcqa workspace: a write-ahead log
//! of [`InstanceDelta`](cqa_relational::InstanceDelta) frames paired
//! with periodic full snapshots, std-only like the rest of the
//! workspace. The delta is the same first-class value that drives the
//! incremental grounding cache, so recovery is a *replay through the
//! ordinary incremental machinery* — a reopened database is not just
//! consistent with every acknowledged write, its derived state
//! (groundings, worklists) rebuilds warm instead of from scratch.
//!
//! ## On-disk format
//!
//! A store is a directory with two files (plus a transient
//! `snapshot.tmp` during compaction):
//!
//! ### WAL (`<dir>/wal`)
//!
//! ```text
//! [ magic "CQAWAL01" : 8 bytes ]
//! [ frame ]*
//!
//! frame := [ payload_len : u32 LE ]
//!          [ seq         : u64 LE ]   monotonic from 1, never reused
//!          [ crc32       : u32 LE ]   CRC-32/IEEE over seq_LE || payload
//!          [ payload     : payload_len bytes ]
//!
//! payload := [ symbol table ] [ removed atoms ] [ added atoms ]
//! ```
//!
//! Every frame is self-describing: it carries its own symbol table
//! (file-local dense id → string), so a frame written by one process is
//! decodable by any other. The CRC covers sequence number and payload
//! together, so a frame spliced from another log — or one whose header
//! survived a torn write but whose body did not — fails as a unit.
//!
//! **Torn-tail semantics.** A crash mid-append leaves a short or
//! corrupt final frame; that is the expected steady state of a WAL, not
//! an error. Opening scans frames until the first short frame, failed
//! checksum, implausible length, or sequence regression, truncates the
//! file at the last good frame boundary, and reports the dropped bytes
//! in [`RecoveryReport::bytes_truncated`]. Acknowledged writes (those
//! whose append returned, under `FsyncPolicy::Always`) are always in
//! the surviving prefix.
//!
//! ### Snapshot (`<dir>/snapshot`)
//!
//! ```text
//! [ magic "CQASNAP1" : 8 bytes ]
//! [ body_len : u64 LE ]
//! [ body     : body_len bytes ]
//! [ crc32(body) : u32 LE ]
//!
//! body := [ last_seq : u64 ]   highest WAL seq folded in
//!         [ schema ]           relation + attribute names
//!         [ symbol table ]     file-local id → string
//!         [ relations ]        per relation: tuple count, packed tuples
//!         [ constraints ]      structural Ic / Nnc encoding
//! ```
//!
//! Snapshots are all-or-nothing (no salvageable prefix), so atomicity
//! comes from the writer protocol: write `snapshot.tmp`, `fsync`,
//! `rename` over `snapshot`, `fsync` the directory. A crash at any
//! point leaves either the complete old snapshot or the complete new
//! one; a stale `snapshot.tmp` is swept on open.
//!
//! ### Symbol remapping
//!
//! [`Symbol`](cqa_relational::Symbol) ids are process-local interner
//! handles — meaningless across processes. Every persisted section
//! therefore encodes *file-local* dense ids plus an id → string table;
//! loading re-interns each string through the live process's interner.
//! Value ordering survives the remap because `Symbol`'s `Ord` is
//! lexicographic on the resolved text, never on the id.
//!
//! ### Fsync semantics
//!
//! [`FsyncPolicy`] governs when appended WAL frames reach stable
//! storage: `Always` (every acknowledged write survives power loss),
//! `EveryN(n)` (loss window bounded by n-1 acknowledged frames), or
//! `Never` (the OS page cache decides — process crashes still lose
//! nothing, since the page cache outlives the process). Snapshot writes
//! always sync, regardless of policy.
//!
//! ### Compaction
//!
//! When the WAL outgrows a configured fraction of the snapshot
//! ([`StoreOptions`]), the store folds the current in-memory state into
//! a fresh snapshot stamped with the current `last_seq` and resets the
//! log. Sequence numbers carry forward across the reset, so recovery
//! resolves every compaction crash window by rule: apply exactly the
//! frames with `seq > snapshot.last_seq`.
//!
//! ## Failure model
//!
//! Everything this crate promises is stated against an explicit fault
//! model, and the whole model is mechanically exercised: all I/O flows
//! through the [`Vfs`] trait, and the deterministic [`FaultVfs`]
//! harness injects each fault class at every reachable operation index
//! (see `tests/fault_injection.rs`).
//!
//! Faults considered, and the contract under each:
//!
//! * **Torn writes** — a crash truncates an in-flight WAL append (or
//!   tmp-snapshot write) at any byte boundary. Contract: reopen
//!   succeeds; the torn tail is truncated and reported
//!   ([`RecoveryReport::bytes_truncated`]); every acknowledged-and-
//!   synced write survives.
//! * **Bit rot / corruption** — any persisted byte flips after a
//!   successful write. Contract: the CRC layer detects it; open fails
//!   with a *typed* [`StorageError`] naming the damaged structure,
//!   never a panic, a hang, or silently wrong data. A corrupt
//!   mid-WAL frame drops that frame and its suffix (reported in
//!   [`RecoveryReport::frames_skipped`]); a corrupt snapshot is fatal
//!   for the store, by design — the snapshot is the root of trust.
//! * **Failed syscalls** — `write`/`fsync`/`rename`/`create` returning
//!   an error at any point. Contract: the error propagates as
//!   [`StorageError`]; on-disk state remains one of the two states the
//!   writer protocol allows (old or new), so a subsequent open
//!   recovers a consistent prefix.
//! * **Crash between protocol steps** — e.g. after `snapshot.tmp` is
//!   written but before the rename, or after rename but before the
//!   directory sync. Contract: the open-time sweep and the
//!   `seq > last_seq` replay rule resolve every interleaving.
//!
//! Out of scope: byzantine filesystems that acknowledge syncs without
//! persisting (the contract is only as strong as `fsync`), collisions
//! of CRC-32 (detection, not authentication), and concurrent writers
//! (single write role, enforced by the facade's clone semantics).
//!
//! The test oracle is equivalence: for every injected fault, either the
//! operation reports a typed error and the reopened store equals the
//! last acknowledged state, or the operation succeeds and the store
//! equals the new state — no third outcome.

pub mod codec;
pub mod error;
pub mod snapshot;
pub mod store;
pub mod vfs;
pub mod wal;

pub use error::StorageError;
pub use snapshot::Snapshot;
pub use store::{DurableStore, Recovered, RecoveryReport, StoreOptions};
pub use vfs::{FaultScript, FaultVfs, OpCounts, RealVfs, Vfs, VfsFile};
pub use wal::FsyncPolicy;
