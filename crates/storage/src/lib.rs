//! # cqa-storage — WAL + segmented-snapshot durability
//!
//! Crash-safe persistence for the nullcqa workspace: a write-ahead log
//! of tagged ops — [`InstanceDelta`](cqa_relational::InstanceDelta)
//! frames and constraint frames — paired with incremental per-relation
//! snapshots, std-only like the rest of the workspace. The delta is the
//! same first-class value that drives the incremental grounding cache,
//! so recovery is a *replay through the ordinary incremental machinery*
//! — a reopened database is not just consistent with every acknowledged
//! write, its derived state (groundings, worklists) rebuilds warm
//! instead of from scratch.
//!
//! ## On-disk format
//!
//! A store is a directory holding a WAL, a manifest, and one segment
//! file per relation (plus a transient `manifest.tmp` during
//! compaction):
//!
//! ### WAL (`<dir>/wal`)
//!
//! ```text
//! [ magic "CQAWAL02" : 8 bytes ]
//! [ frame ]*
//!
//! frame := [ payload_len : u32 LE ]
//!          [ seq         : u64 LE ]   monotonic from 1, never reused
//!          [ crc32       : u32 LE ]   CRC-32/IEEE over seq_LE || payload
//!          [ payload     : payload_len bytes ]
//!
//! payload := [ op_tag : u8 ]  0 = delta, 1 = constraint
//!            [ op body ]      delta: symbol table, removed, added
//!                             constraint: symbol table, structural
//!                             Ic / Nnc encoding
//! ```
//!
//! Every frame is self-describing: it carries its own symbol table
//! (file-local dense id → string), so a frame written by one process is
//! decodable by any other. The CRC covers sequence number and payload
//! together, so a frame spliced from another log — or one whose header
//! survived a torn write but whose body did not — fails as a unit.
//!
//! **Constraint frames** make `add_constraint` an O(delta) append:
//! instead of forcing a snapshot rewrite (constraints used to live only
//! in snapshots), the constraint is logged as a tagged frame and
//! recovery replays it in sequence order with the deltas. The next
//! compaction folds it into the manifest like any other acknowledged
//! write.
//!
//! **Torn-tail semantics.** A crash mid-append leaves a short or
//! corrupt final frame; that is the expected steady state of a WAL, not
//! an error. Opening scans frames until the first short frame, failed
//! checksum, implausible length, or sequence regression, truncates the
//! file at the last good frame boundary, and reports the dropped bytes
//! in [`RecoveryReport::bytes_truncated`]. Acknowledged writes (those
//! whose append returned, under `FsyncPolicy::Always`) are always in
//! the surviving prefix.
//!
//! ### Snapshot (`<dir>/manifest` + `<dir>/seg-<rel>-<epoch>`)
//!
//! The snapshot is segmented: a small manifest records the schema, the
//! constraint set, and one entry per relation naming a segment file
//! that holds the relation's tuples (see [`snapshot`] for the exact
//! byte layout). Both manifest and segments are all-or-nothing
//! `[magic][body_len][body][crc32]` files; the manifest additionally
//! pins each segment's expected length and body CRC, so a swapped or
//! truncated segment is detected as a unit.
//!
//! Atomicity comes from the writer protocol: write changed segments to
//! *fresh* epoch-stamped names and fsync them, fsync the directory,
//! then write `manifest.tmp`, `fsync`, `rename` over `manifest`, and
//! `fsync` the directory again. The rename is the commit point: a crash
//! at any step leaves either the complete old snapshot or the complete
//! new one. Debris — a stale `manifest.tmp`, segment files no manifest
//! references — is swept on open, never trusted.
//!
//! ### Symbol remapping
//!
//! [`Symbol`](cqa_relational::Symbol) ids are process-local interner
//! handles — meaningless across processes. Every persisted section
//! therefore encodes *file-local* dense ids plus an id → string table;
//! loading re-interns each string through the live process's interner.
//! Value ordering survives the remap because `Symbol`'s `Ord` is
//! lexicographic on the resolved text, never on the id.
//!
//! ### Fsync semantics and group commit
//!
//! [`FsyncPolicy`] governs when appended WAL frames reach stable
//! storage: `Always` (every acknowledged write survives power loss),
//! `EveryN(n)` (loss window bounded by n-1 acknowledged frames), or
//! `Never` (the OS page cache decides — process crashes still lose
//! nothing, since the page cache outlives the process). Snapshot writes
//! always sync, regardless of policy.
//!
//! Under `Always`, the fsync is **group-committed** by default
//! ([`StoreOptions::group_commit`]): an append stages its frame and is
//! acknowledged once a *leader* — the first appender to arrive at the
//! commit rendezvous — issues one fsync covering every frame written so
//! far. Concurrent appenders therefore share fsyncs instead of paying
//! one each, while the acknowledgment contract stays exactly
//! per-append-fsync's: **an append does not return until stable storage
//! covers its frame; nothing is ever acknowledged that a reopen can
//! lose.** If the covering fsync fails, every append it would have
//! acknowledged returns an error and none of those frames count as
//! durable. [`StoreOptions::group_window_us`] optionally lets the
//! leader linger for stragglers; [`StoreOptions::group_max_batch`]
//! skips the linger once enough frames are waiting.
//!
//! ### Compaction
//!
//! When the WAL outgrows a configured fraction of the snapshot
//! ([`StoreOptions`]), the store folds the current in-memory state into
//! the snapshot stamped with the current `last_seq` and resets the log.
//! Compaction is **incremental**: the store tracks which relations
//! appends have touched since the last snapshot (including ops
//! recovered from the WAL at open) and rewrites only their segments,
//! re-referencing every clean segment from the previous manifest —
//! O(changed relations), not O(instance). Sequence numbers carry
//! forward across the reset, so recovery resolves every compaction
//! crash window by rule: apply exactly the frames with
//! `seq > manifest.last_seq`.
//!
//! ### Observability
//!
//! [`DurableStore::stats`] returns a [`StoreStats`] with the write-path
//! counters — appends, fsyncs, group-commit batch sizes, segments
//! written vs reused — following the same named-stats convention as the
//! engine-side cache stats.
//!
//! ## Failure model
//!
//! Everything this crate promises is stated against an explicit fault
//! model, and the whole model is mechanically exercised: all I/O flows
//! through the [`Vfs`] trait, and the deterministic [`FaultVfs`]
//! harness injects each fault class at every reachable operation index
//! (see `tests/fault_injection.rs`).
//!
//! Faults considered, and the contract under each:
//!
//! * **Torn writes** — a crash truncates an in-flight WAL append (or
//!   segment / tmp-manifest write) at any byte boundary. Contract:
//!   reopen succeeds; a torn WAL tail is truncated and reported
//!   ([`RecoveryReport::bytes_truncated`]); a torn segment or manifest
//!   write is invisible because nothing referenced it yet (fresh names,
//!   rename-commit); every acknowledged-and-synced write survives.
//! * **Bit rot / corruption** — any persisted byte flips after a
//!   successful write. Contract: the CRC layer detects it; open fails
//!   with a *typed* [`StorageError`] naming the damaged structure,
//!   never a panic, a hang, or silently wrong data. A corrupt
//!   mid-WAL frame drops that frame and its suffix (reported in
//!   [`RecoveryReport::frames_skipped`]); a corrupt manifest or
//!   referenced segment is fatal for the store, by design — the
//!   manifest is the root of trust.
//! * **Failed syscalls** — `write`/`fsync`/`rename`/`remove`/`create`
//!   returning an error at any point. Contract: the error propagates as
//!   [`StorageError`]; on-disk state remains one of the two states the
//!   writer protocol allows (old or new), so a subsequent open recovers
//!   a consistent prefix. A failed group-commit fsync errors *every*
//!   append that fsync would have acknowledged.
//! * **Crash between protocol steps** — e.g. after segments are written
//!   but before the manifest, after `manifest.tmp` is written but
//!   before the rename, or after the rename but before the directory
//!   sync. Contract: the open-time sweep and the `seq > last_seq`
//!   replay rule resolve every interleaving; unreferenced segment files
//!   are garbage-collected, never read.
//!
//! Out of scope: byzantine filesystems that acknowledge syncs without
//! persisting (the contract is only as strong as `fsync`), collisions
//! of CRC-32 (detection, not authentication), and concurrent writers
//! (single write role, enforced by the facade's clone semantics;
//! concurrent *appends through one handle* are in scope and exactly
//! what group commit coalesces).
//!
//! The test oracle is equivalence: for every injected fault, either the
//! operation reports a typed error and the reopened store equals the
//! last acknowledged state, or the operation succeeds and the store
//! equals the new state — no third outcome.

pub mod codec;
pub mod error;
pub mod snapshot;
pub mod store;
pub mod vfs;
pub mod wal;

pub use codec::WalOp;
pub use error::StorageError;
pub use snapshot::{SegmentEntry, Snapshot, SnapshotLayout};
pub use store::{DurableStore, Recovered, RecoveryReport, StoreOptions, StoreStats};
pub use vfs::{FaultScript, FaultVfs, OpCounts, RealVfs, Vfs, VfsFile};
pub use wal::FsyncPolicy;
