//! # cqa-storage — WAL + snapshot durability
//!
//! Crash-safe persistence for the nullcqa workspace: a write-ahead log
//! of [`InstanceDelta`](cqa_relational::InstanceDelta) frames paired
//! with periodic full snapshots, std-only like the rest of the
//! workspace. The delta is the same first-class value that drives the
//! incremental grounding cache, so recovery is a *replay through the
//! ordinary incremental machinery* — a reopened database is not just
//! consistent with every acknowledged write, its derived state
//! (groundings, worklists) rebuilds warm instead of from scratch.
//!
//! ## On-disk format
//!
//! A store is a directory with two files (plus a transient
//! `snapshot.tmp` during compaction):
//!
//! ### WAL (`<dir>/wal`)
//!
//! ```text
//! [ magic "CQAWAL01" : 8 bytes ]
//! [ frame ]*
//!
//! frame := [ payload_len : u32 LE ]
//!          [ seq         : u64 LE ]   monotonic from 1, never reused
//!          [ crc32       : u32 LE ]   CRC-32/IEEE over seq_LE || payload
//!          [ payload     : payload_len bytes ]
//!
//! payload := [ symbol table ] [ removed atoms ] [ added atoms ]
//! ```
//!
//! Every frame is self-describing: it carries its own symbol table
//! (file-local dense id → string), so a frame written by one process is
//! decodable by any other. The CRC covers sequence number and payload
//! together, so a frame spliced from another log — or one whose header
//! survived a torn write but whose body did not — fails as a unit.
//!
//! **Torn-tail semantics.** A crash mid-append leaves a short or
//! corrupt final frame; that is the expected steady state of a WAL, not
//! an error. Opening scans frames until the first short frame, failed
//! checksum, implausible length, or sequence regression, truncates the
//! file at the last good frame boundary, and reports the dropped bytes
//! in [`RecoveryReport::bytes_truncated`]. Acknowledged writes (those
//! whose append returned, under `FsyncPolicy::Always`) are always in
//! the surviving prefix.
//!
//! ### Snapshot (`<dir>/snapshot`)
//!
//! ```text
//! [ magic "CQASNAP1" : 8 bytes ]
//! [ body_len : u64 LE ]
//! [ body     : body_len bytes ]
//! [ crc32(body) : u32 LE ]
//!
//! body := [ last_seq : u64 ]   highest WAL seq folded in
//!         [ schema ]           relation + attribute names
//!         [ symbol table ]     file-local id → string
//!         [ relations ]        per relation: tuple count, packed tuples
//!         [ constraints ]      structural Ic / Nnc encoding
//! ```
//!
//! Snapshots are all-or-nothing (no salvageable prefix), so atomicity
//! comes from the writer protocol: write `snapshot.tmp`, `fsync`,
//! `rename` over `snapshot`, `fsync` the directory. A crash at any
//! point leaves either the complete old snapshot or the complete new
//! one; a stale `snapshot.tmp` is swept on open.
//!
//! ### Symbol remapping
//!
//! [`Symbol`](cqa_relational::Symbol) ids are process-local interner
//! handles — meaningless across processes. Every persisted section
//! therefore encodes *file-local* dense ids plus an id → string table;
//! loading re-interns each string through the live process's interner.
//! Value ordering survives the remap because `Symbol`'s `Ord` is
//! lexicographic on the resolved text, never on the id.
//!
//! ### Fsync semantics
//!
//! [`FsyncPolicy`] governs when appended WAL frames reach stable
//! storage: `Always` (every acknowledged write survives power loss),
//! `EveryN(n)` (loss window bounded by n-1 acknowledged frames), or
//! `Never` (the OS page cache decides — process crashes still lose
//! nothing, since the page cache outlives the process). Snapshot writes
//! always sync, regardless of policy.
//!
//! ### Compaction
//!
//! When the WAL outgrows a configured fraction of the snapshot
//! ([`StoreOptions`]), the store folds the current in-memory state into
//! a fresh snapshot stamped with the current `last_seq` and resets the
//! log. Sequence numbers carry forward across the reset, so recovery
//! resolves every compaction crash window by rule: apply exactly the
//! frames with `seq > snapshot.last_seq`.

pub mod codec;
pub mod error;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use error::StorageError;
pub use snapshot::Snapshot;
pub use store::{DurableStore, Recovered, RecoveryReport, StoreOptions};
pub use wal::FsyncPolicy;
