//! Snapshots: a small **manifest** plus one **segment file per
//! relation**, so compaction rewrites only the relations that changed
//! since the last snapshot and reuses the rest by reference — O(changed
//! relations) instead of O(instance).
//!
//! ## On-disk layout
//!
//! ```text
//! <dir>/manifest            the snapshot's root of trust
//! <dir>/seg-<rel>-<epoch>   one per relation, named by relation index
//!                           and the compaction epoch that wrote it
//! <dir>/manifest.tmp        transient; swept on open
//!
//! manifest := [ magic "CQAMANI1" : 8 bytes ]
//!             [ body_len : u64 LE ]
//!             [ body     : body_len bytes ]
//!             [ crc32(body) : u32 LE ]
//!
//! manifest body := [ last_seq : u64 ]   highest WAL seq folded in
//!                  [ epoch    : u64 ]   compaction counter (names fresh
//!                                       segment files)
//!                  [ schema ]           relation names + attr names
//!                  [ symbol table ]     for constraint constants
//!                  [ constraints ]      structural Ic / Nnc encoding
//!                  [ segments ]         per relation, in rel-id order:
//!                                       file name, file length, body
//!                                       CRC, tuple count
//!
//! segment  := [ magic "CQASEG01" : 8 bytes ]
//!             [ body_len : u64 LE ]
//!             [ body     : body_len bytes ]
//!             [ crc32(body) : u32 LE ]
//!
//! segment body := [ rel_index : u32 ]   cross-check vs the manifest slot
//!                 [ symbol table ]
//!                 [ tuple_count : u32 ][ packed tuples ]
//! ```
//!
//! ## Writer protocol
//!
//! A snapshot *commits at the manifest rename*:
//!
//! 1. Write each changed relation's segment to a **fresh name**
//!    (`seg-<rel>-<epoch>`, epoch = previous + 1) and fsync it. Fresh
//!    names never collide with files the live manifest references, so a
//!    crash mid-write damages nothing that is reachable.
//! 2. Fsync the directory, persisting the new names.
//! 3. Write `manifest.tmp` (referencing new segments for changed
//!    relations and the *previous* segment files for unchanged ones),
//!    fsync it, rename over `manifest`, fsync the directory.
//! 4. Best-effort delete the replaced segment files. A failure here is
//!    harmless — unreferenced `seg-*` files are swept on open.
//!
//! A crash at any point leaves either the complete old snapshot or the
//! complete new one. Both the manifest and each segment are
//! all-or-nothing (failed checksum or short body is
//! [`StorageError::Corrupt`]); the manifest additionally pins each
//! segment's expected length and body CRC, so a segment file swapped or
//! truncated behind the manifest's back is detected as a unit.
//!
//! ## Constraint encoding
//!
//! Constraints are stored *structurally* and rebuilt through
//! [`Ic::builder`](cqa_constraints::Ic) on load (see
//! [`codec::decode_constraint`](crate::codec::decode_constraint)), so
//! the rebuilt set is `Eq`-equal to the one that was saved — including
//! derived metadata, which is recomputed rather than trusted from disk.

use crate::codec::{
    crc32, decode_constraints, encode_constraints, Reader, SymbolSink, SymbolSource, Writer,
};
use crate::error::StorageError;
use crate::vfs::{RealVfs, Vfs};
use cqa_constraints::IcSet;
use cqa_relational::{Instance, RelId, Schema, Tuple};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Manifest file magic: identifies the snapshot root and its version.
pub const MANIFEST_MAGIC: &[u8; 8] = b"CQAMANI1";

/// Segment file magic.
pub const SEGMENT_MAGIC: &[u8; 8] = b"CQASEG01";

/// One relation's segment as the manifest records it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentEntry {
    /// Segment file name within the store directory.
    pub name: String,
    /// Expected file length in bytes (header + body + CRC).
    pub file_len: u64,
    /// Expected CRC32 of the segment body.
    pub crc: u32,
    /// Tuples in the segment.
    pub tuples: u64,
}

/// The snapshot's file-level shape: what the manifest references. The
/// store keeps the live layout in memory so an incremental compaction
/// can re-reference unchanged segments without reading them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotLayout {
    /// Highest WAL sequence number folded into this snapshot.
    pub last_seq: u64,
    /// Compaction epoch that wrote the manifest; fresh segments of the
    /// next compaction are named with `epoch + 1`.
    pub epoch: u64,
    /// Per-relation segments, in relation-id order.
    pub segments: Vec<SegmentEntry>,
    /// Manifest + referenced segment bytes (drives the compaction
    /// ratio).
    pub total_bytes: u64,
}

impl SnapshotLayout {
    /// `true` iff `name` is one of this layout's segment files.
    pub fn references(&self, name: &str) -> bool {
        self.segments.iter().any(|s| s.name == name)
    }
}

/// A decoded snapshot.
#[derive(Debug)]
pub struct Snapshot {
    /// The persisted instance, rebuilt over a fresh schema `Arc`.
    pub instance: Instance,
    /// The persisted constraint set.
    pub ics: IcSet,
    /// The manifest's file-level shape (also carries `last_seq`).
    pub layout: SnapshotLayout,
}

/// What a snapshot write did: the new layout plus how many segments
/// were freshly written vs reused by reference.
#[derive(Debug)]
pub struct WriteOutcome {
    /// The committed layout.
    pub layout: SnapshotLayout,
    /// Segment files written by this snapshot.
    pub segments_written: u64,
    /// Segment entries reused from the previous layout.
    pub segments_reused: u64,
}

/// The manifest path inside a store directory.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("manifest")
}

fn segment_name(rel_index: usize, epoch: u64) -> String {
    format!("seg-{rel_index}-{epoch}")
}

// ---------------------------------------------------------------------
// Segment encoding
// ---------------------------------------------------------------------

fn encode_segment(rel_index: usize, tuples: &BTreeSet<Tuple>) -> (Vec<u8>, u32) {
    let mut sink = SymbolSink::new();
    let mut staged = Writer::new();
    staged.u32(tuples.len() as u32);
    for t in tuples {
        sink.tuple(&mut staged, t);
    }
    let mut body = Writer::new();
    body.u32(rel_index as u32);
    sink.encode_table(&mut body);
    body.raw(&staged.into_bytes());
    let body = body.into_bytes();
    let crc = crc32(&body);

    let mut out = Vec::with_capacity(8 + 8 + body.len() + 4);
    out.extend_from_slice(SEGMENT_MAGIC);
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc.to_le_bytes());
    (out, crc)
}

/// Verify the framing of a file in `[magic][body_len][body][crc]`
/// layout and return the body slice.
fn checked_body<'a>(
    bytes: &'a [u8],
    magic: &[u8; 8],
    what: &'static str,
) -> Result<&'a [u8], StorageError> {
    if bytes.len() < 8 + 8 + 4 || &bytes[..8] != magic {
        return Err(StorageError::corrupt(
            what,
            "missing or wrong magic (not the expected file kind)",
        ));
    }
    let body_len = u64::from_le_bytes(bytes[8..16].try_into().expect("8")) as usize;
    let expected_total = 8 + 8 + body_len + 4;
    if bytes.len() != expected_total {
        return Err(StorageError::corrupt(
            what,
            format!(
                "file is {} bytes, header says {expected_total}",
                bytes.len()
            ),
        ));
    }
    let body = &bytes[16..16 + body_len];
    let stored_crc = u32::from_le_bytes(bytes[16 + body_len..].try_into().expect("4"));
    if crc32(body) != stored_crc {
        return Err(StorageError::corrupt(what, "checksum mismatch"));
    }
    Ok(body)
}

fn decode_segment(
    bytes: &[u8],
    rel_index: usize,
    entry: &SegmentEntry,
) -> Result<BTreeSet<Tuple>, StorageError> {
    if bytes.len() as u64 != entry.file_len {
        return Err(StorageError::corrupt(
            "segment",
            format!(
                "{} is {} bytes, manifest says {}",
                entry.name,
                bytes.len(),
                entry.file_len
            ),
        ));
    }
    let body = checked_body(bytes, SEGMENT_MAGIC, "segment")?;
    if crc32(body) != entry.crc {
        return Err(StorageError::corrupt(
            "segment",
            format!("{} does not match the manifest's CRC", entry.name),
        ));
    }
    let mut r = Reader::new(body, "segment body");
    let stored_index = r.u32()? as usize;
    if stored_index != rel_index {
        return Err(StorageError::corrupt(
            "segment body",
            format!(
                "{} holds relation {stored_index}, expected {rel_index}",
                entry.name
            ),
        ));
    }
    let source = SymbolSource::decode_table(&mut r)?;
    let tuple_count = r.len_u32()? as usize;
    if tuple_count as u64 != entry.tuples {
        return Err(StorageError::corrupt(
            "segment body",
            format!(
                "{} holds {tuple_count} tuples, manifest says {}",
                entry.name, entry.tuples
            ),
        ));
    }
    let mut tuples = BTreeSet::new();
    for _ in 0..tuple_count {
        tuples.insert(source.tuple(&mut r)?);
    }
    if !r.is_exhausted() {
        return Err(StorageError::corrupt(
            "segment body",
            format!("{} trailing bytes", r.remaining()),
        ));
    }
    Ok(tuples)
}

// ---------------------------------------------------------------------
// Manifest encoding
// ---------------------------------------------------------------------

fn encode_manifest_body(
    instance: &Instance,
    ics: &IcSet,
    last_seq: u64,
    epoch: u64,
    segments: &[SegmentEntry],
) -> Vec<u8> {
    // Constraint constants intern through the sink, so their bytes land
    // in a staging buffer; the table — known only once they are encoded
    // — is written first in the final layout.
    let mut sink = SymbolSink::new();
    let mut staged = Writer::new();
    encode_constraints(&mut sink, &mut staged, ics);

    let mut body = Writer::new();
    body.u64(last_seq);
    body.u64(epoch);
    let schema = instance.schema();
    body.u32(schema.len() as u32);
    for (_, rel) in schema.iter() {
        body.str(rel.name());
        body.u32(rel.arity() as u32);
        for attr in rel.attrs() {
            body.str(attr);
        }
    }
    sink.encode_table(&mut body);
    body.raw(&staged.into_bytes());
    for seg in segments {
        body.str(&seg.name);
        body.u64(seg.file_len);
        body.u32(seg.crc);
        body.u64(seg.tuples);
    }
    body.into_bytes()
}

struct DecodedManifest {
    schema: Arc<Schema>,
    ics: IcSet,
    layout: SnapshotLayout,
}

fn decode_manifest_body(bytes: &[u8], manifest_len: u64) -> Result<DecodedManifest, StorageError> {
    let mut r = Reader::new(bytes, "manifest body");
    let last_seq = r.u64()?;
    let epoch = r.u64()?;

    let rel_count = r.len_u32()? as usize;
    let mut builder = Schema::builder();
    for _ in 0..rel_count {
        let name = r.str()?.to_string();
        let arity = r.len_u32()? as usize;
        let mut attrs = Vec::with_capacity(arity);
        for _ in 0..arity {
            attrs.push(r.str()?.to_string());
        }
        builder = builder.relation(name, attrs);
    }
    let schema: Arc<Schema> = builder.finish()?.into_shared();

    let source = SymbolSource::decode_table(&mut r)?;
    let ics = decode_constraints(&source, &mut r, &schema)?;

    let mut segments = Vec::with_capacity(rel_count);
    let mut total_bytes = manifest_len;
    for _ in 0..rel_count {
        let name = r.str()?.to_string();
        let file_len = r.u64()?;
        let crc = r.u32()?;
        let tuples = r.u64()?;
        total_bytes += file_len;
        segments.push(SegmentEntry {
            name,
            file_len,
            crc,
            tuples,
        });
    }
    if !r.is_exhausted() {
        return Err(StorageError::corrupt(
            "manifest body",
            format!("{} trailing bytes", r.remaining()),
        ));
    }
    Ok(DecodedManifest {
        schema,
        ics,
        layout: SnapshotLayout {
            last_seq,
            epoch,
            segments,
            total_bytes,
        },
    })
}

// ---------------------------------------------------------------------
// File I/O
// ---------------------------------------------------------------------

/// Write a snapshot of `instance` + `ics` into `dir`, committing at the
/// manifest rename. With `prev = Some((layout, dirty))` only relations
/// in `dirty` get fresh segment files; every other relation's entry is
/// reused from `layout` by reference. With `prev = None` every segment
/// is written (a *full* snapshot — store creation, or the explicit
/// full-rewrite path).
pub fn write_with(
    vfs: &dyn Vfs,
    dir: &Path,
    instance: &Instance,
    ics: &IcSet,
    last_seq: u64,
    prev: Option<(&SnapshotLayout, &BTreeSet<RelId>)>,
) -> Result<WriteOutcome, StorageError> {
    let epoch = prev.map(|(l, _)| l.epoch + 1).unwrap_or(0);
    let schema = instance.schema();
    let mut segments = Vec::with_capacity(schema.len());
    let mut segments_written = 0u64;
    let mut segments_reused = 0u64;
    let mut segment_bytes = 0u64;

    for rel in schema.rel_ids() {
        let idx = rel.index();
        if let Some((prev_layout, dirty)) = prev {
            if !dirty.contains(&rel) {
                let entry = prev_layout.segments[idx].clone();
                segment_bytes += entry.file_len;
                segments.push(entry);
                segments_reused += 1;
                continue;
            }
        }
        let (bytes, crc) = encode_segment(idx, instance.relation(rel));
        let name = segment_name(idx, epoch);
        {
            // Fresh epoch-stamped names never collide with files the
            // live manifest references, so a plain create-truncate is
            // safe (a retry after a failed attempt overwrites only its
            // own garbage).
            let mut f = vfs.create_truncate(&dir.join(&name))?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        segment_bytes += bytes.len() as u64;
        segments.push(SegmentEntry {
            name,
            file_len: bytes.len() as u64,
            crc,
            tuples: instance.relation(rel).len() as u64,
        });
        segments_written += 1;
    }
    if segments_written > 0 {
        // Persist the new segment *names* before any manifest
        // references them.
        vfs.sync_dir(dir)?;
    }

    let body = encode_manifest_body(instance, ics, last_seq, epoch, &segments);
    let mut out = Vec::with_capacity(8 + 8 + body.len() + 4);
    out.extend_from_slice(MANIFEST_MAGIC);
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc32(&body).to_le_bytes());

    let path = manifest_path(dir);
    let tmp = path.with_extension("tmp");
    {
        let mut f = vfs.create_truncate(&tmp)?;
        f.write_all(&out)?;
        f.sync_all()?;
    }
    vfs.rename(&tmp, &path)?;
    // Persist the rename itself; without the directory fsync the new
    // name can vanish in a power loss even though the data blocks
    // survived.
    vfs.sync_dir(dir)?;

    Ok(WriteOutcome {
        layout: SnapshotLayout {
            last_seq,
            epoch,
            segments,
            total_bytes: out.len() as u64 + segment_bytes,
        },
        segments_written,
        segments_reused,
    })
}

/// [`write_with`] on the real filesystem.
pub fn write(
    dir: &Path,
    instance: &Instance,
    ics: &IcSet,
    last_seq: u64,
    prev: Option<(&SnapshotLayout, &BTreeSet<RelId>)>,
) -> Result<WriteOutcome, StorageError> {
    write_with(&RealVfs, dir, instance, ics, last_seq, prev)
}

/// Read and verify the snapshot rooted at `dir`'s manifest: the
/// manifest itself, then every referenced segment (length, CRC and
/// relation index all cross-checked against the manifest's record).
pub fn read_with(vfs: &dyn Vfs, dir: &Path) -> Result<Snapshot, StorageError> {
    let bytes = vfs.read(&manifest_path(dir))?;
    let body = checked_body(&bytes, MANIFEST_MAGIC, "manifest")?;
    let decoded = decode_manifest_body(body, bytes.len() as u64)?;

    let mut relations = Vec::with_capacity(decoded.schema.len());
    for rel in decoded.schema.rel_ids() {
        let idx = rel.index();
        let entry = &decoded.layout.segments[idx];
        let seg_bytes = vfs.read(&dir.join(&entry.name))?;
        relations.push(decode_segment(&seg_bytes, idx, entry)?);
    }
    // Bulk-load: one validated construction instead of per-tuple inserts.
    let instance = Instance::from_relations(decoded.schema.clone(), relations)?;
    Ok(Snapshot {
        instance,
        ics: decoded.ics,
        layout: decoded.layout,
    })
}

/// [`read_with`] on the real filesystem.
pub fn read(dir: &Path) -> Result<Snapshot, StorageError> {
    read_with(&RealVfs, dir)
}

/// Delete snapshot debris in `dir`: a stale `manifest.tmp` and any
/// `seg-*` file the live `layout` does not reference (left by a crash
/// mid-compaction, or by housekeeping deletes that failed). Returns how
/// many files were removed.
pub fn sweep_with(vfs: &dyn Vfs, dir: &Path, layout: &SnapshotLayout) -> Result<u64, StorageError> {
    let mut removed = 0u64;
    for name in vfs.read_dir_names(dir)? {
        let stale =
            name == "manifest.tmp" || (name.starts_with("seg-") && !layout.references(&name));
        if stale {
            vfs.remove_file(&dir.join(&name))?;
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_constraints::{c, v, CmpOp, Ic, Nnc};
    use cqa_relational::{i, null, s};
    use std::fs;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cqa-snap-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn example_state() -> (Instance, IcSet) {
        let schema = Schema::builder()
            .relation("r", ["x", "y"])
            .relation("s", ["u", "v"])
            .finish()
            .unwrap()
            .into_shared();
        let mut inst = Instance::empty(schema.clone());
        inst.insert_named("r", [s("a"), s("b")]).unwrap();
        inst.insert_named("r", [s("a"), s("c")]).unwrap();
        inst.insert_named("s", [null(), s("a")]).unwrap();
        inst.insert_named("s", [i(7), i(-3)]).unwrap();
        let mut ics = IcSet::default();
        ics.push(
            Ic::builder(&schema, "key_r")
                .body_atom("r", [v("x"), v("y")])
                .body_atom("r", [v("x"), v("z")])
                .builtin(v("y"), CmpOp::Eq, v("z"))
                .finish()
                .unwrap(),
        );
        ics.push(
            Ic::builder(&schema, "fk_s_r")
                .body_atom("s", [v("u"), v("w")])
                .head_atom("r", [v("w"), v("t")])
                .finish()
                .unwrap(),
        );
        ics.push(
            Ic::builder(&schema, "with_const")
                .body_atom("r", [v("x"), c(s("b"))])
                .builtin(v("x"), CmpOp::Neq, c(i(0)))
                .finish()
                .unwrap(),
        );
        ics.push(Nnc::new(&schema, "nn_r_x", "r", 0).unwrap());
        (inst, ics)
    }

    #[test]
    fn snapshot_roundtrips_instance_and_constraints() {
        let dir = tmpdir("roundtrip");
        let (inst, ics) = example_state();
        let out = write(&dir, &inst, &ics, 42, None).unwrap();
        assert_eq!(out.segments_written, 2, "one segment per relation");
        assert_eq!(out.segments_reused, 0);
        assert!(out.layout.total_bytes > 0);
        assert!(!dir.join("manifest.tmp").exists(), "tmp cleaned up");

        let snap = read(&dir).unwrap();
        assert_eq!(snap.layout.last_seq, 42);
        assert_eq!(snap.layout, out.layout);
        assert_eq!(snap.instance, inst);
        assert_eq!(snap.ics, ics, "constraints rebuilt Eq-equal");
        // The rebuilt schema carries attribute names too.
        let r = snap.instance.schema().require("r").unwrap();
        assert_eq!(snap.instance.schema().relation(r).attrs(), &["x", "y"]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn incremental_write_reuses_clean_segments() {
        let dir = tmpdir("incremental");
        let (mut inst, ics) = example_state();
        let full = write(&dir, &inst, &ics, 5, None).unwrap();
        let r_name = full.layout.segments[0].name.clone();
        let s_entry = full.layout.segments[1].clone();

        // Only relation r changes; s's segment must be reused verbatim.
        inst.insert_named("r", [s("new"), s("row")]).unwrap();
        let rel_r = inst.schema().require("r").unwrap();
        let dirty: BTreeSet<RelId> = [rel_r].into_iter().collect();
        let inc = write(&dir, &inst, &ics, 9, Some((&full.layout, &dirty))).unwrap();
        assert_eq!((inc.segments_written, inc.segments_reused), (1, 1));
        assert_eq!(inc.layout.epoch, full.layout.epoch + 1);
        assert_ne!(inc.layout.segments[0].name, r_name, "r rewritten fresh");
        assert_eq!(inc.layout.segments[1], s_entry, "s reused by reference");

        let snap = read(&dir).unwrap();
        assert_eq!(snap.layout.last_seq, 9);
        assert_eq!(snap.instance, inst, "reads merge new + reused segments");
        assert_eq!(snap.ics, ics);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_checksum_detects_bit_flip() {
        let dir = tmpdir("flip");
        let (inst, ics) = example_state();
        write(&dir, &inst, &ics, 1, None).unwrap();
        let path = manifest_path(&dir);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let err = read(&dir).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_tampering_is_detected() {
        let dir = tmpdir("segflip");
        let (inst, ics) = example_state();
        let out = write(&dir, &inst, &ics, 1, None).unwrap();
        let seg = dir.join(&out.layout.segments[0].name);

        // A flipped byte fails the CRC.
        let pristine = fs::read(&seg).unwrap();
        let mut bytes = pristine.clone();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&seg, &bytes).unwrap();
        assert!(matches!(read(&dir), Err(StorageError::Corrupt { .. })));

        // A truncated segment fails the manifest's length pin.
        fs::write(&seg, &pristine[..pristine.len() - 3]).unwrap();
        assert!(matches!(read(&dir), Err(StorageError::Corrupt { .. })));

        // A *valid* segment holding the wrong relation fails the
        // cross-check even if lengths happen to collide.
        fs::write(&seg, &pristine).unwrap();
        assert!(read(&dir).is_ok(), "restored snapshot reads again");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_truncation_is_corrupt_not_a_panic() {
        let dir = tmpdir("trunc");
        let (inst, ics) = example_state();
        write(&dir, &inst, &ics, 1, None).unwrap();
        let path = manifest_path(&dir);
        let bytes = fs::read(&path).unwrap();
        for keep in [0, 4, 12, 20, bytes.len() - 1] {
            fs::write(&path, &bytes[..keep]).unwrap();
            assert!(
                matches!(read(&dir), Err(StorageError::Corrupt { .. })),
                "truncation to {keep} bytes must be Corrupt"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sweep_removes_unreferenced_debris_only() {
        let dir = tmpdir("sweep");
        let (inst, ics) = example_state();
        let out = write(&dir, &inst, &ics, 3, None).unwrap();
        fs::write(dir.join("manifest.tmp"), b"half-written garbage").unwrap();
        fs::write(dir.join("seg-0-99"), b"orphaned segment").unwrap();
        fs::write(dir.join("wal"), b"not snapshot debris").unwrap();

        let removed = sweep_with(&RealVfs, &dir, &out.layout).unwrap();
        assert_eq!(removed, 2);
        assert!(!dir.join("manifest.tmp").exists());
        assert!(!dir.join("seg-0-99").exists());
        assert!(dir.join("wal").exists(), "non-snapshot files untouched");
        for seg in &out.layout.segments {
            assert!(dir.join(&seg.name).exists(), "live segments survive");
        }
        assert_eq!(read(&dir).unwrap().instance, inst);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_instance_and_no_constraints_roundtrip() {
        let dir = tmpdir("empty");
        let schema = Schema::builder()
            .relation("only", ["a"])
            .finish()
            .unwrap()
            .into_shared();
        let inst = Instance::empty(schema);
        write(&dir, &inst, &IcSet::default(), 0, None).unwrap();
        let snap = read(&dir).unwrap();
        assert!(snap.instance.is_empty());
        assert!(snap.ics.is_empty());
        assert_eq!(snap.layout.last_seq, 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
