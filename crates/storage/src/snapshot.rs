//! Snapshots: a single self-contained file holding the schema, every
//! relation's packed tuples, the constraint set, and the symbol table
//! that makes the tuples meaningful in *any* process.
//!
//! ## On-disk layout
//!
//! ```text
//! [ magic "CQASNAP1" : 8 bytes ]
//! [ body_len : u64 LE ]
//! [ body     : body_len bytes ]
//! [ crc32(body) : u32 LE ]
//!
//! body := [ last_seq : u64 ]            highest WAL seq folded in
//!         [ schema ]                    relation names + attr names
//!         [ symbol table ]              file-local id → string
//!         [ relations ]                 per relation: tuple count, tuples
//!         [ constraints ]               structural Ic / Nnc encoding
//! ```
//!
//! Unlike the WAL, a snapshot is all-or-nothing: a failed checksum or a
//! short body is [`StorageError::Corrupt`], because there is no "good
//! prefix" of a snapshot to salvage. Atomicity comes from the writer
//! protocol instead: write `snapshot.tmp`, `fsync` it, `rename` over
//! `snapshot`, `fsync` the directory — a crash at any point leaves
//! either the complete old snapshot or the complete new one.
//!
//! ## Constraint encoding
//!
//! Constraints are stored *structurally* (atoms, terms, builtin
//! comparisons, variable names) and rebuilt through
//! [`Ic::builder`](cqa_constraints::Ic) on load. Because the builder
//! assigns variable ids in first-occurrence order and the encoder
//! replays terms in their original order, the rebuilt [`Ic`] is
//! `Eq`-equal to the one that was saved — including its derived
//! metadata (universal/existential sets, relevant attributes), which is
//! recomputed rather than trusted from disk.

use crate::codec::{crc32, Reader, SymbolSink, SymbolSource, Writer};
use crate::error::StorageError;
use crate::vfs::{RealVfs, Vfs};
use cqa_constraints::{CmpOp, Constraint, Ic, IcAtom, IcSet, Nnc, Term, TermSpec};
use cqa_relational::{Instance, RelId, Schema, Tuple};
use std::path::Path;
use std::sync::Arc;

/// File magic: identifies a snapshot and its format version.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"CQASNAP1";

/// A decoded snapshot.
#[derive(Debug)]
pub struct Snapshot {
    /// The persisted instance, rebuilt over a fresh schema `Arc`.
    pub instance: Instance,
    /// The persisted constraint set.
    pub ics: IcSet,
    /// Highest WAL sequence number already folded into the instance;
    /// recovery skips WAL frames with `seq <= last_seq`.
    pub last_seq: u64,
    /// On-disk size in bytes (drives the compaction ratio).
    pub bytes: u64,
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn encode_term(sink: &mut SymbolSink, w: &mut Writer, term: &Term) {
    match term {
        Term::Var(v) => {
            w.u8(0);
            w.u32(v.0);
        }
        Term::Const(val) => {
            w.u8(1);
            sink.value(w, val);
        }
    }
}

fn encode_ic_atoms(sink: &mut SymbolSink, w: &mut Writer, atoms: &[IcAtom]) {
    w.u32(atoms.len() as u32);
    for atom in atoms {
        w.u32(atom.rel.0);
        w.u32(atom.terms.len() as u32);
        for t in &atom.terms {
            encode_term(sink, w, t);
        }
    }
}

fn cmp_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Neq => 1,
        CmpOp::Lt => 2,
        CmpOp::Leq => 3,
        CmpOp::Gt => 4,
        CmpOp::Geq => 5,
    }
}

fn encode_constraints(sink: &mut SymbolSink, w: &mut Writer, ics: &IcSet) {
    w.u32(ics.len() as u32);
    for con in ics.constraints() {
        match con {
            Constraint::Tgd(ic) => {
                w.u8(0);
                w.str(ic.name());
                w.u32(ic.var_count() as u32);
                for v in 0..ic.var_count() {
                    w.str(ic.var_name(cqa_constraints::VarId(v as u32)));
                }
                encode_ic_atoms(sink, w, ic.body());
                encode_ic_atoms(sink, w, ic.head());
                w.u32(ic.builtins().len() as u32);
                for b in ic.builtins() {
                    w.u8(cmp_tag(b.op));
                    encode_term(sink, w, &b.lhs);
                    encode_term(sink, w, &b.rhs);
                }
            }
            Constraint::NotNull(nnc) => {
                w.u8(1);
                w.str(&nnc.name);
                w.u32(nnc.rel.0);
                w.u32(nnc.position as u32);
            }
        }
    }
}

/// Encode the snapshot body (everything between `body_len` and the
/// trailing CRC).
pub fn encode_body(instance: &Instance, ics: &IcSet, last_seq: u64) -> Vec<u8> {
    // Tuples and constraint constants intern through the sink, so their
    // bytes land in a staging buffer; the table — known only once they
    // are encoded — is written first in the final layout.
    let mut sink = SymbolSink::new();
    let mut staged = Writer::new();
    for rel in instance.schema().rel_ids() {
        let tuples = instance.relation(rel);
        staged.u32(tuples.len() as u32);
        for t in tuples {
            sink.tuple(&mut staged, t);
        }
    }
    encode_constraints(&mut sink, &mut staged, ics);

    let mut body = Writer::new();
    body.u64(last_seq);
    let schema = instance.schema();
    body.u32(schema.len() as u32);
    for (_, rel) in schema.iter() {
        body.str(rel.name());
        body.u32(rel.arity() as u32);
        for attr in rel.attrs() {
            body.str(attr);
        }
    }
    sink.encode_table(&mut body);
    body.raw(&staged.into_bytes());
    body.into_bytes()
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

fn decode_term(
    source: &SymbolSource,
    r: &mut Reader<'_>,
    var_names: &[String],
) -> Result<TermSpec, StorageError> {
    match r.u8()? {
        0 => {
            let idx = r.u32()? as usize;
            let name = var_names.get(idx).ok_or_else(|| {
                StorageError::corrupt(
                    "snapshot constraint",
                    format!("variable id {idx} out of range ({} names)", var_names.len()),
                )
            })?;
            Ok(TermSpec::Var(name.clone()))
        }
        1 => Ok(TermSpec::Const(source.value(r)?)),
        tag => Err(StorageError::corrupt(
            "snapshot constraint",
            format!("unknown term tag {tag}"),
        )),
    }
}

fn decode_ic_atoms(
    source: &SymbolSource,
    r: &mut Reader<'_>,
    var_names: &[String],
    schema: &Schema,
) -> Result<Vec<(String, Vec<TermSpec>)>, StorageError> {
    let count = r.len_u32()? as usize;
    let mut atoms = Vec::with_capacity(count);
    for _ in 0..count {
        let rel = RelId(r.u32()?);
        if rel.index() >= schema.len() {
            return Err(StorageError::corrupt(
                "snapshot constraint",
                format!("relation id {rel} out of range"),
            ));
        }
        let name = schema.relation(rel).name().to_string();
        let arity = r.len_u32()? as usize;
        let mut terms = Vec::with_capacity(arity);
        for _ in 0..arity {
            terms.push(decode_term(source, r, var_names)?);
        }
        atoms.push((name, terms));
    }
    Ok(atoms)
}

fn decode_cmp(tag: u8) -> Result<CmpOp, StorageError> {
    Ok(match tag {
        0 => CmpOp::Eq,
        1 => CmpOp::Neq,
        2 => CmpOp::Lt,
        3 => CmpOp::Leq,
        4 => CmpOp::Gt,
        5 => CmpOp::Geq,
        other => {
            return Err(StorageError::corrupt(
                "snapshot constraint",
                format!("unknown comparison tag {other}"),
            ))
        }
    })
}

fn decode_constraints(
    source: &SymbolSource,
    r: &mut Reader<'_>,
    schema: &Schema,
) -> Result<IcSet, StorageError> {
    let count = r.len_u32()? as usize;
    let mut ics = IcSet::default();
    for _ in 0..count {
        match r.u8()? {
            0 => {
                let name = r.str()?.to_string();
                let var_count = r.len_u32()? as usize;
                let mut var_names = Vec::with_capacity(var_count);
                for _ in 0..var_count {
                    var_names.push(r.str()?.to_string());
                }
                let body = decode_ic_atoms(source, r, &var_names, schema)?;
                let head = decode_ic_atoms(source, r, &var_names, schema)?;
                let builtin_count = r.len_u32()? as usize;
                let mut builtins = Vec::with_capacity(builtin_count);
                for _ in 0..builtin_count {
                    let op = decode_cmp(r.u8()?)?;
                    let lhs = decode_term(source, r, &var_names)?;
                    let rhs = decode_term(source, r, &var_names)?;
                    builtins.push((op, lhs, rhs));
                }
                // Replaying atoms and terms in their original order makes
                // the builder assign the same first-occurrence variable
                // ids the saved Ic had, so the rebuilt value is Eq-equal.
                let mut builder = Ic::builder(schema, name);
                for (rel, terms) in body {
                    builder = builder.body_atom(&rel, terms);
                }
                for (rel, terms) in head {
                    builder = builder.head_atom(&rel, terms);
                }
                for (op, lhs, rhs) in builtins {
                    builder = builder.builtin(lhs, op, rhs);
                }
                ics.push(builder.finish()?);
            }
            1 => {
                let name = r.str()?.to_string();
                let rel = RelId(r.u32()?);
                if rel.index() >= schema.len() {
                    return Err(StorageError::corrupt(
                        "snapshot constraint",
                        format!("relation id {rel} out of range"),
                    ));
                }
                let position = r.u32()? as usize;
                let rel_name = schema.relation(rel).name().to_string();
                ics.push(Nnc::new(schema, name, &rel_name, position)?);
            }
            tag => {
                return Err(StorageError::corrupt(
                    "snapshot constraint",
                    format!("unknown constraint tag {tag}"),
                ))
            }
        }
    }
    Ok(ics)
}

/// Decode a snapshot body produced by [`encode_body`].
pub fn decode_body(bytes: &[u8]) -> Result<(Instance, IcSet, u64), StorageError> {
    let mut r = Reader::new(bytes, "snapshot body");
    let last_seq = r.u64()?;

    let rel_count = r.len_u32()? as usize;
    let mut builder = Schema::builder();
    for _ in 0..rel_count {
        let name = r.str()?.to_string();
        let arity = r.len_u32()? as usize;
        let mut attrs = Vec::with_capacity(arity);
        for _ in 0..arity {
            attrs.push(r.str()?.to_string());
        }
        builder = builder.relation(name, attrs);
    }
    let schema: Arc<Schema> = builder.finish()?.into_shared();

    let source = SymbolSource::decode_table(&mut r)?;

    let mut relations = Vec::with_capacity(schema.len());
    for _ in schema.rel_ids() {
        let tuple_count = r.len_u32()? as usize;
        let mut tuples = std::collections::BTreeSet::new();
        for _ in 0..tuple_count {
            let tuple: Tuple = source.tuple(&mut r)?;
            tuples.insert(tuple);
        }
        relations.push(tuples);
    }
    // Bulk-load: one validated construction instead of per-tuple inserts.
    let instance = Instance::from_relations(schema.clone(), relations)?;

    let ics = decode_constraints(&source, &mut r, &schema)?;
    if !r.is_exhausted() {
        return Err(StorageError::corrupt(
            "snapshot body",
            format!("{} trailing bytes", r.remaining()),
        ));
    }
    Ok((instance, ics, last_seq))
}

// ---------------------------------------------------------------------
// File I/O
// ---------------------------------------------------------------------

/// Atomically (re)place the snapshot at `path`: write `<path>.tmp`,
/// sync, rename over `path`, sync the parent directory. Returns the
/// snapshot's size in bytes.
pub fn write(
    path: &Path,
    instance: &Instance,
    ics: &IcSet,
    last_seq: u64,
) -> Result<u64, StorageError> {
    write_with(&RealVfs, path, instance, ics, last_seq)
}

/// [`write`] against an explicit [`Vfs`].
pub fn write_with(
    vfs: &dyn Vfs,
    path: &Path,
    instance: &Instance,
    ics: &IcSet,
    last_seq: u64,
) -> Result<u64, StorageError> {
    let body = encode_body(instance, ics, last_seq);
    let mut out = Vec::with_capacity(8 + 8 + body.len() + 4);
    out.extend_from_slice(SNAPSHOT_MAGIC);
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc32(&body).to_le_bytes());

    let tmp = path.with_extension("tmp");
    {
        let mut f = vfs.create_truncate(&tmp)?;
        f.write_all(&out)?;
        f.sync_all()?;
    }
    vfs.rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        // Persist the rename itself; without the directory fsync the
        // new name can vanish in a power loss even though the data
        // blocks survived.
        vfs.sync_dir(dir)?;
    }
    Ok(out.len() as u64)
}

/// Read and verify the snapshot at `path`.
pub fn read(path: &Path) -> Result<Snapshot, StorageError> {
    read_with(&RealVfs, path)
}

/// [`read`] against an explicit [`Vfs`].
pub fn read_with(vfs: &dyn Vfs, path: &Path) -> Result<Snapshot, StorageError> {
    let bytes = vfs.read(path)?;
    if bytes.len() < 8 + 8 + 4 || &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(StorageError::corrupt(
            "snapshot",
            "missing or wrong magic (not a snapshot file)",
        ));
    }
    let body_len = u64::from_le_bytes(bytes[8..16].try_into().expect("8")) as usize;
    let expected_total = 8 + 8 + body_len + 4;
    if bytes.len() != expected_total {
        return Err(StorageError::corrupt(
            "snapshot",
            format!(
                "file is {} bytes, header says {expected_total}",
                bytes.len()
            ),
        ));
    }
    let body = &bytes[16..16 + body_len];
    let stored_crc = u32::from_le_bytes(bytes[16 + body_len..].try_into().expect("4"));
    if crc32(body) != stored_crc {
        return Err(StorageError::corrupt("snapshot", "checksum mismatch"));
    }
    let (instance, ics, last_seq) = decode_body(body)?;
    Ok(Snapshot {
        instance,
        ics,
        last_seq,
        bytes: bytes.len() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_constraints::{c, v};
    use cqa_relational::{i, null, s};
    use std::fs;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cqa-snap-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn example_state() -> (Instance, IcSet) {
        let schema = Schema::builder()
            .relation("r", ["x", "y"])
            .relation("s", ["u", "v"])
            .finish()
            .unwrap()
            .into_shared();
        let mut inst = Instance::empty(schema.clone());
        inst.insert_named("r", [s("a"), s("b")]).unwrap();
        inst.insert_named("r", [s("a"), s("c")]).unwrap();
        inst.insert_named("s", [null(), s("a")]).unwrap();
        inst.insert_named("s", [i(7), i(-3)]).unwrap();
        let mut ics = IcSet::default();
        ics.push(
            Ic::builder(&schema, "key_r")
                .body_atom("r", [v("x"), v("y")])
                .body_atom("r", [v("x"), v("z")])
                .builtin(v("y"), CmpOp::Eq, v("z"))
                .finish()
                .unwrap(),
        );
        ics.push(
            Ic::builder(&schema, "fk_s_r")
                .body_atom("s", [v("u"), v("w")])
                .head_atom("r", [v("w"), v("t")])
                .finish()
                .unwrap(),
        );
        ics.push(
            Ic::builder(&schema, "with_const")
                .body_atom("r", [v("x"), c(s("b"))])
                .builtin(v("x"), CmpOp::Neq, c(i(0)))
                .finish()
                .unwrap(),
        );
        ics.push(Nnc::new(&schema, "nn_r_x", "r", 0).unwrap());
        (inst, ics)
    }

    #[test]
    fn snapshot_roundtrips_instance_and_constraints() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("snapshot");
        let (inst, ics) = example_state();
        let bytes = write(&path, &inst, &ics, 42).unwrap();
        assert!(bytes > 0);
        assert!(!path.with_extension("tmp").exists(), "tmp cleaned up");

        let snap = read(&path).unwrap();
        assert_eq!(snap.last_seq, 42);
        assert_eq!(snap.bytes, bytes);
        assert_eq!(snap.instance, inst);
        assert_eq!(snap.ics, ics, "constraints rebuilt Eq-equal");
        // The rebuilt schema carries attribute names too.
        let r = snap.instance.schema().require("r").unwrap();
        assert_eq!(snap.instance.schema().relation(r).attrs(), &["x", "y"]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_checksum_detects_bit_flip() {
        let dir = tmpdir("flip");
        let path = dir.join("snapshot");
        let (inst, ics) = example_state();
        write(&path, &inst, &ics, 1).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let err = read(&path).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_truncation_is_corrupt_not_a_panic() {
        let dir = tmpdir("trunc");
        let path = dir.join("snapshot");
        let (inst, ics) = example_state();
        write(&path, &inst, &ics, 1).unwrap();
        let bytes = fs::read(&path).unwrap();
        for keep in [0, 4, 12, 20, bytes.len() - 1] {
            fs::write(&path, &bytes[..keep]).unwrap();
            assert!(
                matches!(read(&path), Err(StorageError::Corrupt { .. })),
                "truncation to {keep} bytes must be Corrupt"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rewrite_replaces_atomically() {
        let dir = tmpdir("rewrite");
        let path = dir.join("snapshot");
        let (mut inst, ics) = example_state();
        write(&path, &inst, &ics, 5).unwrap();
        inst.insert_named("r", [s("new"), s("row")]).unwrap();
        write(&path, &inst, &ics, 9).unwrap();
        let snap = read(&path).unwrap();
        assert_eq!(snap.last_seq, 9);
        assert_eq!(snap.instance, inst);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_instance_and_no_constraints_roundtrip() {
        let dir = tmpdir("empty");
        let path = dir.join("snapshot");
        let schema = Schema::builder()
            .relation("only", ["a"])
            .finish()
            .unwrap()
            .into_shared();
        let inst = Instance::empty(schema);
        write(&path, &inst, &IcSet::default(), 0).unwrap();
        let snap = read(&path).unwrap();
        assert!(snap.instance.is_empty());
        assert!(snap.ics.is_empty());
        assert_eq!(snap.last_seq, 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
