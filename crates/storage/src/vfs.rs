//! The virtual filesystem seam: every byte the store moves goes through
//! a [`Vfs`], so tests can inject *deterministic* storage faults at
//! exact operation boundaries instead of hoping a `kill -9` lands in an
//! interesting window.
//!
//! Two implementations:
//!
//! * [`RealVfs`] — the production path, a zero-cost veneer over
//!   `std::fs`. [`DurableStore::create`](crate::DurableStore::create)
//!   and friends use it implicitly.
//! * [`FaultVfs`] — wraps the real filesystem but counts every write,
//!   fsync, read and rename, and fires the faults described by a
//!   [`FaultScript`] when a counter hits its scripted index: fail the
//!   Nth fsync, short-write K bytes, ENOSPC after a byte budget, lose a
//!   rename (the crash point between `snapshot.tmp` and its rename),
//!   flip a bit on the Nth read. Because the store's I/O sequence is
//!   itself deterministic, a `(workload, script)` pair replays the same
//!   fault at the same byte every run — crash windows become enumerable
//!   unit tests.
//!
//! A fired fault can optionally *kill* the VFS
//! ([`FaultScript::crash_after_fault`]): every subsequent operation
//! fails, modelling the process dying at the fault point. Reopening the
//! directory with a fresh [`RealVfs`] then plays the part of the
//! post-crash process.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An open file handle behind the [`Vfs`] seam.
pub trait VfsFile: fmt::Debug + Send {
    /// Write the whole buffer (the all-or-error contract of
    /// `Write::write_all`).
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Read from the current position to EOF, appending to `out`.
    fn read_to_end(&mut self, out: &mut Vec<u8>) -> io::Result<usize>;
    /// Flush file *data* to stable storage (`fdatasync`).
    fn sync_data(&mut self) -> io::Result<()>;
    /// Flush file data and metadata to stable storage (`fsync`).
    fn sync_all(&mut self) -> io::Result<()>;
    /// Truncate (or extend) the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
    /// Move the file cursor.
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64>;
    /// Current file size in bytes.
    fn len(&self) -> io::Result<u64>;
    /// `true` iff the file is zero bytes long.
    fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }
}

/// The filesystem operations the store needs — nothing more.
///
/// Implementations must be shareable across threads: the facade keeps
/// its store behind an `Arc<Mutex<_>>`.
pub trait Vfs: fmt::Debug + Send + Sync {
    /// Open an existing file for reading and writing.
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Create (or truncate) a file for reading and writing.
    fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Read a whole file into memory.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Atomically rename `from` over `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Delete a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Fsync a directory, persisting renames/creates within it.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Create a directory and all missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Does `path` exist?
    fn exists(&self, path: &Path) -> bool;
    /// File names (not full paths) in `dir`, sorted for determinism.
    /// Used by the open-time sweep that deletes unreferenced segment
    /// files; metadata-only, so it is neither counted nor faulted.
    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>>;
}

/// Shared `read_dir_names` body: both implementations list the real
/// filesystem and sort, so sweep order is a pure function of the
/// directory's contents.
fn real_read_dir_names(dir: &Path) -> io::Result<Vec<String>> {
    let mut names = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        names.push(entry?.file_name().to_string_lossy().into_owned());
    }
    names.sort();
    Ok(names)
}

// ---------------------------------------------------------------------
// RealVfs
// ---------------------------------------------------------------------

/// The production [`Vfs`]: plain `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealVfs;

#[derive(Debug)]
struct RealFile(File);

impl VfsFile for RealFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }
    fn read_to_end(&mut self, out: &mut Vec<u8>) -> io::Result<usize> {
        self.0.read_to_end(out)
    }
    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
    fn sync_all(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        self.0.seek(pos)
    }
    fn len(&self) -> io::Result<u64> {
        Ok(self.0.metadata()?.len())
    }
}

impl Vfs for RealVfs {
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let f = OpenOptions::new().read(true).write(true).open(path)?;
        Ok(Box::new(RealFile(f)))
    }
    fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let f = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(RealFile(f)))
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        Ok(bytes)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        File::open(dir)?.sync_all()
    }
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>> {
        real_read_dir_names(dir)
    }
}

// ---------------------------------------------------------------------
// FaultVfs
// ---------------------------------------------------------------------

/// Which faults to fire, keyed by 1-based operation indices. All
/// counters are global across every file the VFS touches, which keeps a
/// script a pure function of the workload's I/O sequence.
#[derive(Debug, Clone, Default)]
pub struct FaultScript {
    /// Fail the Nth fsync (`sync_data`, `sync_all` and directory syncs
    /// share one counter). The flush is *not* performed.
    pub fail_fsync: Option<u64>,
    /// On the Nth write, persist only the first K bytes and fail.
    pub short_write: Option<(u64, usize)>,
    /// Total byte budget: the write that would exceed it persists the
    /// prefix that fits and fails with an ENOSPC-flavoured error.
    pub enospc_after: Option<u64>,
    /// Fail the Nth rename without performing it — the crash point
    /// between a fully-synced `manifest.tmp` and its rename.
    pub fail_rename: Option<u64>,
    /// Fail the Nth file removal without performing it — the crash
    /// point in post-compaction housekeeping, after the new manifest is
    /// durable but before replaced segment files are deleted.
    pub fail_remove: Option<u64>,
    /// On the Nth read, flip one bit of the returned buffer (byte
    /// `offset % len`); the bytes on disk stay intact.
    pub flip_read: Option<(u64, u64)>,
    /// After any fault fires, every subsequent operation fails —
    /// modelling the process dying at the fault point.
    pub crash_after_fault: bool,
}

impl FaultScript {
    /// A script that never fires (useful as a counting profiler).
    pub fn profile() -> Self {
        FaultScript::default()
    }
    /// Fail the `n`th fsync (1-based).
    pub fn fail_fsync(mut self, n: u64) -> Self {
        self.fail_fsync = Some(n);
        self
    }
    /// Short-write: the `n`th write persists only `keep` bytes.
    pub fn short_write(mut self, n: u64, keep: usize) -> Self {
        self.short_write = Some((n, keep));
        self
    }
    /// Fail writes once `budget` total bytes have been written.
    pub fn enospc_after(mut self, budget: u64) -> Self {
        self.enospc_after = Some(budget);
        self
    }
    /// Fail the `n`th rename (1-based).
    pub fn fail_rename(mut self, n: u64) -> Self {
        self.fail_rename = Some(n);
        self
    }
    /// Fail the `n`th file removal (1-based).
    pub fn fail_remove(mut self, n: u64) -> Self {
        self.fail_remove = Some(n);
        self
    }
    /// Flip a bit of the `n`th read at byte `offset % read_len`.
    pub fn flip_read(mut self, n: u64, offset: u64) -> Self {
        self.flip_read = Some((n, offset));
        self
    }
    /// Kill the VFS after the first fault fires.
    pub fn crash_after_fault(mut self) -> Self {
        self.crash_after_fault = true;
        self
    }
}

/// Operation counts observed by a [`FaultVfs`] — run a workload against
/// `FaultScript::profile()` first, then enumerate fault points
/// `1..=counts.fsyncs` (etc.) with one scripted run each.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// `write_all` calls.
    pub writes: u64,
    /// `sync_data` + `sync_all` + directory syncs.
    pub fsyncs: u64,
    /// `read`/`read_to_end` calls.
    pub reads: u64,
    /// Renames.
    pub renames: u64,
    /// File removals.
    pub removes: u64,
    /// Total bytes written.
    pub bytes_written: u64,
}

#[derive(Debug)]
struct FaultState {
    script: FaultScript,
    counts: Mutex<OpCounts>,
    fired: AtomicU64,
    dead: AtomicBool,
}

impl FaultState {
    fn injected(&self, what: &str) -> io::Error {
        self.fired.fetch_add(1, Ordering::SeqCst);
        if self.script.crash_after_fault {
            self.dead.store(true, Ordering::SeqCst);
        }
        io::Error::other(format!("injected fault: {what}"))
    }

    fn check_alive(&self) -> io::Result<()> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(io::Error::other(
                "injected fault: process crashed at an earlier fault point",
            ));
        }
        Ok(())
    }

    /// Handle one write of `buf` against `file`, applying short-write /
    /// ENOSPC scripting.
    fn write(&self, file: &mut File, buf: &[u8]) -> io::Result<()> {
        self.check_alive()?;
        let mut c = self.counts.lock().expect("fault counters");
        c.writes += 1;
        let idx = c.writes;
        if let Some((n, keep)) = self.script.short_write {
            if idx == n {
                let keep = keep.min(buf.len());
                file.write_all(&buf[..keep])?;
                c.bytes_written += keep as u64;
                drop(c);
                return Err(self.injected(&format!("short write ({keep} bytes persisted)")));
            }
        }
        if let Some(budget) = self.script.enospc_after {
            if c.bytes_written + buf.len() as u64 > budget {
                let room = budget.saturating_sub(c.bytes_written) as usize;
                file.write_all(&buf[..room])?;
                c.bytes_written = budget;
                drop(c);
                return Err(self.injected("no space left on device (ENOSPC)"));
            }
        }
        file.write_all(buf)?;
        c.bytes_written += buf.len() as u64;
        Ok(())
    }

    /// Handle one fsync-class operation; `flush` performs the real sync.
    fn fsync(&self, flush: impl FnOnce() -> io::Result<()>) -> io::Result<()> {
        self.check_alive()?;
        let idx = {
            let mut c = self.counts.lock().expect("fault counters");
            c.fsyncs += 1;
            c.fsyncs
        };
        if self.script.fail_fsync == Some(idx) {
            // The flush is deliberately skipped: an fsync that reports
            // failure must not be assumed to have persisted anything.
            return Err(self.injected("fsync failed"));
        }
        flush()
    }

    /// Count one read and maybe flip a bit in the freshly-read suffix.
    fn post_read(&self, fresh: &mut [u8]) {
        let idx = {
            let mut c = self.counts.lock().expect("fault counters");
            c.reads += 1;
            c.reads
        };
        if let Some((n, offset)) = self.script.flip_read {
            if idx == n && !fresh.is_empty() {
                let at = (offset % fresh.len() as u64) as usize;
                fresh[at] ^= 0x40;
                // A read fault is observed, not returned: record it so
                // tests can assert the script actually fired.
                self.fired.fetch_add(1, Ordering::SeqCst);
            }
        }
    }
}

/// A [`Vfs`] that injects the faults scripted in a [`FaultScript`].
/// Clones share counters and scripting, so the store's own handles and
/// the test's handle observe one I/O timeline.
#[derive(Debug, Clone)]
pub struct FaultVfs {
    state: Arc<FaultState>,
}

impl FaultVfs {
    /// A fault VFS over the real filesystem, firing `script`.
    pub fn new(script: FaultScript) -> Self {
        FaultVfs {
            state: Arc::new(FaultState {
                script,
                counts: Mutex::new(OpCounts::default()),
                fired: AtomicU64::new(0),
                dead: AtomicBool::new(false),
            }),
        }
    }

    /// How many scripted faults have fired so far.
    pub fn faults_fired(&self) -> u64 {
        self.state.fired.load(Ordering::SeqCst)
    }

    /// The operation counts observed so far.
    pub fn counts(&self) -> OpCounts {
        *self.state.counts.lock().expect("fault counters")
    }
}

#[derive(Debug)]
struct FaultFile {
    file: File,
    state: Arc<FaultState>,
}

impl VfsFile for FaultFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let state = self.state.clone();
        state.write(&mut self.file, buf)
    }
    fn read_to_end(&mut self, out: &mut Vec<u8>) -> io::Result<usize> {
        self.state.check_alive()?;
        let start = out.len();
        let n = self.file.read_to_end(out)?;
        self.state.post_read(&mut out[start..]);
        Ok(n)
    }
    fn sync_data(&mut self) -> io::Result<()> {
        let file = &self.file;
        self.state.fsync(|| file.sync_data())
    }
    fn sync_all(&mut self) -> io::Result<()> {
        let file = &self.file;
        self.state.fsync(|| file.sync_all())
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.state.check_alive()?;
        self.file.set_len(len)
    }
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        self.state.check_alive()?;
        self.file.seek(pos)
    }
    fn len(&self) -> io::Result<u64> {
        self.state.check_alive()?;
        Ok(self.file.metadata()?.len())
    }
}

impl Vfs for FaultVfs {
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.state.check_alive()?;
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        Ok(Box::new(FaultFile {
            file,
            state: self.state.clone(),
        }))
    }
    fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.state.check_alive()?;
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(FaultFile {
            file,
            state: self.state.clone(),
        }))
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.state.check_alive()?;
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        self.state.post_read(&mut bytes);
        Ok(bytes)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.state.check_alive()?;
        let idx = {
            let mut c = self.state.counts.lock().expect("fault counters");
            c.renames += 1;
            c.renames
        };
        if self.state.script.fail_rename == Some(idx) {
            // The rename is *lost*, not half-done: `from` stays on disk
            // (the stale-tmp sweep's job), `to` keeps its old content.
            return Err(self.state.injected("rename lost"));
        }
        std::fs::rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.state.check_alive()?;
        let idx = {
            let mut c = self.state.counts.lock().expect("fault counters");
            c.removes += 1;
            c.removes
        };
        if self.state.script.fail_remove == Some(idx) {
            // The removal is lost: the file stays on disk, modelling a
            // crash before housekeeping — the open-time sweep's job.
            return Err(self.state.injected("remove lost"));
        }
        std::fs::remove_file(path)
    }
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.state.fsync(|| File::open(dir)?.sync_all())
    }
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.state.check_alive()?;
        std::fs::create_dir_all(path)
    }
    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.state.check_alive()?;
        real_read_dir_names(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cqa-vfs-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn real_vfs_roundtrips() {
        let dir = tmpdir("real");
        let path = dir.join("f");
        let vfs = RealVfs;
        let mut f = vfs.create_truncate(&path).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_all().unwrap();
        drop(f);
        assert_eq!(vfs.read(&path).unwrap(), b"hello");
        let renamed = dir.join("g");
        vfs.rename(&path, &renamed).unwrap();
        assert!(vfs.exists(&renamed) && !vfs.exists(&path));
        vfs.sync_dir(&dir).unwrap();
        vfs.remove_file(&renamed).unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fault_vfs_counts_and_is_deterministic() {
        let dir = tmpdir("counts");
        let run = |script: FaultScript| -> (OpCounts, u64) {
            let vfs = FaultVfs::new(script);
            let path = dir.join("f");
            let mut f = vfs.create_truncate(&path).unwrap();
            f.write_all(b"abc").unwrap();
            f.write_all(b"defg").unwrap();
            let _ = f.sync_data();
            drop(f);
            let _ = vfs.read(&path);
            (vfs.counts(), vfs.faults_fired())
        };
        let (a, fired_a) = run(FaultScript::profile());
        let (b, fired_b) = run(FaultScript::profile());
        assert_eq!(a, b, "profiling is deterministic");
        assert_eq!(a.writes, 2);
        assert_eq!(a.fsyncs, 1);
        assert_eq!(a.reads, 1);
        assert_eq!(a.bytes_written, 7);
        assert_eq!((fired_a, fired_b), (0, 0));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scripted_faults_fire_at_exact_indices() {
        let dir = tmpdir("fire");
        let path = dir.join("f");

        // Second write is cut short at 2 bytes.
        let vfs = FaultVfs::new(FaultScript::default().short_write(2, 2));
        let mut f = vfs.create_truncate(&path).unwrap();
        f.write_all(b"keep").unwrap();
        let err = f.write_all(b"lost").unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        assert_eq!(vfs.faults_fired(), 1);
        drop(f);
        assert_eq!(fs::read(&path).unwrap(), b"keeplo", "2-byte torn suffix");

        // ENOSPC once 5 total bytes are written.
        let vfs = FaultVfs::new(FaultScript::default().enospc_after(5));
        let mut f = vfs.create_truncate(&path).unwrap();
        f.write_all(b"abc").unwrap();
        let err = f.write_all(b"defg").unwrap_err();
        assert!(err.to_string().contains("ENOSPC"), "{err}");
        drop(f);
        assert_eq!(
            fs::read(&path).unwrap(),
            b"abcde",
            "budget exhausted mid-write"
        );

        // First fsync fails; crash_after_fault kills everything after.
        let vfs = FaultVfs::new(FaultScript::default().fail_fsync(1).crash_after_fault());
        let mut f = vfs.create_truncate(&path).unwrap();
        f.write_all(b"x").unwrap();
        assert!(f.sync_data().is_err());
        assert!(f.write_all(b"y").is_err(), "dead after the fault");
        assert!(vfs.open_rw(&path).is_err(), "VFS itself is dead");

        // Read flip corrupts the buffer, not the disk.
        fs::write(&path, b"pristine").unwrap();
        let vfs = FaultVfs::new(FaultScript::default().flip_read(1, 3));
        let flipped = vfs.read(&path).unwrap();
        assert_ne!(flipped, b"pristine");
        assert_eq!(fs::read(&path).unwrap(), b"pristine");
        assert_eq!(vfs.faults_fired(), 1);

        // Lost rename leaves both names as they were.
        fs::write(dir.join("a"), b"new").unwrap();
        fs::write(dir.join("b"), b"old").unwrap();
        let vfs = FaultVfs::new(FaultScript::default().fail_rename(1));
        assert!(vfs.rename(&dir.join("a"), &dir.join("b")).is_err());
        assert_eq!(fs::read(dir.join("a")).unwrap(), b"new");
        assert_eq!(fs::read(dir.join("b")).unwrap(), b"old");

        // Lost remove leaves the file on disk and is counted.
        let vfs = FaultVfs::new(FaultScript::default().fail_remove(1));
        assert!(vfs.remove_file(&dir.join("a")).is_err());
        assert!(dir.join("a").exists(), "remove lost, file survives");
        assert_eq!(vfs.counts().removes, 1);
        assert!(vfs.remove_file(&dir.join("a")).is_ok(), "only the 1st");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_dir_names_is_sorted_and_uncounted() {
        let dir = tmpdir("listing");
        for name in ["zz", "aa", "mm"] {
            fs::write(dir.join(name), b"x").unwrap();
        }
        let names = RealVfs.read_dir_names(&dir).unwrap();
        assert_eq!(names, vec!["aa", "mm", "zz"]);
        let vfs = FaultVfs::new(FaultScript::profile());
        assert_eq!(vfs.read_dir_names(&dir).unwrap(), names);
        assert_eq!(vfs.counts(), OpCounts::default(), "metadata-only");
        fs::remove_dir_all(&dir).unwrap();
    }
}
