//! Storage-layer errors.

use std::fmt;
use std::io;

/// Errors surfaced by the durability layer.
///
/// The deliberate asymmetry: a *torn or corrupt WAL tail* is **not** an
/// error — recovery truncates it and reports the drop through
/// [`crate::RecoveryReport`], because a tail mangled by a crash is the
/// expected steady state of a write-ahead log. `Corrupt` is reserved for
/// damage recovery cannot round past: a snapshot whose checksum fails, a
/// file that is not a store at all.
#[derive(Debug)]
pub enum StorageError {
    /// An OS-level I/O failure.
    Io(io::Error),
    /// A file exists but its content is not a valid store artifact
    /// (wrong magic, failed checksum, truncated section). Carries what
    /// was being decoded and why it failed.
    Corrupt {
        /// Which artifact or section was being decoded.
        what: &'static str,
        /// Why decoding failed.
        detail: String,
    },
    /// The store directory has no snapshot to open.
    NotAStore(std::path::PathBuf),
    /// Creating a store where one already exists.
    AlreadyExists(std::path::PathBuf),
    /// The persisted constraint set failed to re-validate against the
    /// persisted schema (only possible if the files were edited by hand).
    Constraint(cqa_constraints::ConstraintError),
    /// The persisted tuples failed to re-validate against the persisted
    /// schema (only possible if the files were edited by hand).
    Relational(cqa_relational::RelationalError),
}

impl StorageError {
    /// Shorthand for a corruption error.
    pub(crate) fn corrupt(what: &'static str, detail: impl Into<String>) -> Self {
        StorageError::Corrupt {
            what,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::Corrupt { what, detail } => {
                write!(f, "corrupt {what}: {detail}")
            }
            StorageError::NotAStore(p) => {
                write!(f, "{} is not a store (no snapshot file)", p.display())
            }
            StorageError::AlreadyExists(p) => {
                write!(f, "a store already exists at {}", p.display())
            }
            StorageError::Constraint(e) => write!(f, "persisted constraint invalid: {e}"),
            StorageError::Relational(e) => write!(f, "persisted instance invalid: {e}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<cqa_constraints::ConstraintError> for StorageError {
    fn from(e: cqa_constraints::ConstraintError) -> Self {
        StorageError::Constraint(e)
    }
}

impl From<cqa_relational::RelationalError> for StorageError {
    fn from(e: cqa_relational::RelationalError) -> Self {
        StorageError::Relational(e)
    }
}
