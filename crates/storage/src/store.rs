//! The durable store: one directory holding a segmented snapshot plus a
//! WAL, with the recovery, group-commit and compaction protocol between
//! them.
//!
//! ## Directory layout
//!
//! ```text
//! <dir>/manifest          snapshot root: schema, constraints, and one
//!                         entry per relation segment (see
//!                         [`crate::snapshot`])
//! <dir>/seg-<rel>-<epoch> per-relation tuple segments
//! <dir>/wal               tagged op frames appended since the manifest
//! <dir>/manifest.tmp      transient; a crash mid-compaction can leave
//!                         one (swept on open, never trusted)
//! ```
//!
//! ## Protocol invariants
//!
//! - **WAL-before-state**: callers append an op *before* mutating
//!   in-memory state, and the append does not return under
//!   [`FsyncPolicy::Always`] until an fsync covers it. An acknowledged
//!   write is therefore always recoverable.
//! - **Group commit**: under `Always` with
//!   [`StoreOptions::group_commit`] enabled, the fsync is issued by a
//!   *leader* — the first appender to arrive — whose single
//!   `fdatasync` covers every frame written before it, including frames
//!   other threads appended while the leader was waiting its turn.
//!   Followers block until the leader reports a durable (or failed)
//!   sequence number at or past their own. The acknowledgment contract
//!   is byte-for-byte the one per-append fsync gives: nothing returns
//!   to the caller that a reopen can lose.
//! - **Monotonic sequence numbers**: frame seqs start at 1 and are never
//!   reused, even across compactions. The manifest records the highest
//!   seq folded into it (`last_seq`); recovery applies only frames with
//!   `seq > last_seq`, so every crash window around compaction resolves
//!   to the same state.
//! - **Incremental compaction**: the store tracks which relations have
//!   been touched by appends since the last snapshot; compaction
//!   rewrites *only their* segments (to fresh epoch-stamped names) and
//!   re-references the rest, then commits at the manifest rename —
//!   O(changed relations), not O(instance). Constraints ride in the
//!   manifest itself and are always current.
//! - **Constraint frames are O(delta)**: `add_constraint` appends one
//!   tagged WAL frame ([`WalOp::Constraint`]) instead of forcing a
//!   snapshot rewrite; recovery replays it in sequence order with the
//!   delta frames.
//!
//! The store moves bytes and sequence numbers; it never interprets the
//! ops. Replaying them through the incremental grounding machinery is
//! the facade's job — that is what makes a reopened database arrive
//! *warm*, not just consistent.

use crate::codec::{encode_constraint_op, encode_delta_op, WalOp};
use crate::error::StorageError;
use crate::snapshot::{self, SnapshotLayout};
use crate::vfs::{RealVfs, Vfs};
use crate::wal::{FsyncPolicy, Wal};
use cqa_constraints::{Constraint, IcSet};
use cqa_relational::{Instance, InstanceDelta, RelId};
use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Tuning knobs for a [`DurableStore`].
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// When appended WAL frames are flushed to stable storage.
    pub fsync: FsyncPolicy,
    /// Coalesce `Always`-policy fsyncs across concurrent appenders: one
    /// leader fsync acknowledges the whole batch. Identical crash
    /// contract; with a single appender and no
    /// [`StoreOptions::group_window_us`] it degenerates to one fsync
    /// per append.
    pub group_commit: bool,
    /// How long a group-commit leader lingers for stragglers before
    /// issuing its fsync, in microseconds. The leader polls, so it
    /// leaves the window early the moment
    /// [`StoreOptions::group_max_batch`] frames are staged. `0` syncs
    /// immediately, coalescing only frames that have already landed.
    pub group_window_us: u64,
    /// A leader stops lingering once this many frames are already
    /// awaiting the fsync.
    pub group_max_batch: u32,
    /// Compaction triggers when `wal_bytes > snapshot_bytes * num / den`
    /// (and the WAL exceeds [`StoreOptions::compact_min_wal_bytes`]).
    pub compact_num: u64,
    /// Denominator of the compaction fraction.
    pub compact_den: u64,
    /// Compaction never triggers below this many WAL bytes — tiny
    /// stores would otherwise snapshot on every write.
    pub compact_min_wal_bytes: u64,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            fsync: FsyncPolicy::Always,
            group_commit: true,
            group_window_us: 0,
            group_max_batch: 64,
            compact_num: 1,
            compact_den: 1,
            compact_min_wal_bytes: 64 * 1024,
        }
    }
}

/// Write-path counters, named and cheap to copy — the storage
/// counterpart of the engine-side cache stats. Snapshot via
/// [`DurableStore::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// WAL frames appended (delta + constraint).
    pub appends: u64,
    /// Constraint frames among the appends.
    pub constraint_frames: u64,
    /// fsyncs issued on the WAL (any policy, group or solo).
    pub fsyncs: u64,
    /// Group-commit fsyncs among them (leader syncs).
    pub group_commits: u64,
    /// Total frames acknowledged by group-commit fsyncs; divide by
    /// [`StoreStats::group_commits`] for the mean batch size.
    pub group_batch_frames: u64,
    /// Largest single group-commit batch.
    pub group_batch_max: u64,
    /// Current WAL length in bytes (sampled when the stats are read).
    pub wal_bytes: u64,
    /// Snapshot compactions performed by this handle.
    pub compactions: u64,
    /// Segment files freshly written across those compactions.
    pub segments_written: u64,
    /// Segment entries reused by reference across those compactions.
    pub segments_reused: u64,
}

impl StoreStats {
    /// Mean group-commit batch size (0.0 before the first group
    /// commit).
    pub fn mean_group_batch(&self) -> f64 {
        if self.group_commits == 0 {
            0.0
        } else {
            self.group_batch_frames as f64 / self.group_commits as f64
        }
    }
}

/// What recovery found and did, for observability and tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Atoms in the snapshot (before WAL replay).
    pub snapshot_atoms: usize,
    /// Highest sequence number folded into the snapshot.
    pub snapshot_last_seq: u64,
    /// Frames replayed on top of the snapshot (delta + constraint).
    pub frames_applied: u64,
    /// Constraint frames among the replayed ones.
    pub constraint_frames: u64,
    /// Intact frames skipped because the snapshot already covered them
    /// (the compaction-then-crash window).
    pub frames_skipped: u64,
    /// Bytes dropped from the WAL's torn/corrupt tail (0 on clean
    /// shutdown).
    pub bytes_truncated: u64,
    /// Highest sequence number in the recovered state — the durable
    /// write horizon. Everything at or below it was acknowledged and
    /// survived; nothing above it was ever acknowledged.
    pub last_seq: u64,
}

/// The result of opening an existing store.
#[derive(Debug)]
pub struct Recovered {
    /// The instance exactly as the snapshot recorded it (WAL ops
    /// **not** yet applied) — the caller replays [`Recovered::ops`]
    /// through its own incremental paths.
    pub snapshot_instance: Instance,
    /// The constraint set as of the snapshot (WAL constraint frames
    /// **not** yet applied).
    pub ics: IcSet,
    /// Surviving WAL ops in sequence order, each past the snapshot
    /// horizon.
    pub ops: Vec<(u64, WalOp)>,
    /// What recovery found and did.
    pub report: RecoveryReport,
}

/// Everything guarded by the store's primary lock: the WAL handle, the
/// live snapshot layout, and the dirty-relation set that makes
/// compaction incremental.
#[derive(Debug)]
struct StoreInner {
    wal: Wal,
    layout: SnapshotLayout,
    /// Relations touched by appends since the last snapshot (including
    /// ops recovered from the WAL at open). Their segments must be
    /// rewritten at the next compaction; everything else is reused.
    dirty: BTreeSet<RelId>,
    /// Appends since the last fsync, for [`FsyncPolicy::EveryN`].
    pending_syncs: u32,
    stats: StoreStats,
}

/// Group-commit rendezvous state: which seqs are durable, which failed,
/// and whether a leader currently owns the fsync.
#[derive(Debug, Default)]
struct GroupState {
    durable_seq: u64,
    failed_seq: u64,
    failed_msg: String,
    leader_active: bool,
}

/// A manifest + segments + WAL ensemble rooted at one directory.
///
/// All methods take `&self`; internal locking makes concurrent appends
/// safe, which is what group commit coalesces across.
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
    options: StoreOptions,
    vfs: Arc<dyn Vfs>,
    inner: Mutex<StoreInner>,
    commit: Mutex<GroupState>,
    commit_cv: Condvar,
}

impl DurableStore {
    fn wal_path(dir: &Path) -> PathBuf {
        dir.join("wal")
    }

    /// Create a fresh store at `dir` (creating the directory if needed)
    /// seeded with `instance` and `ics`. Fails with
    /// [`StorageError::AlreadyExists`] if `dir` already holds a store.
    pub fn create(
        dir: &Path,
        instance: &Instance,
        ics: &IcSet,
        options: StoreOptions,
    ) -> Result<DurableStore, StorageError> {
        Self::create_with_vfs(dir, instance, ics, options, Arc::new(RealVfs))
    }

    /// [`DurableStore::create`] against an explicit [`Vfs`] — the
    /// fault-injection entry point.
    pub fn create_with_vfs(
        dir: &Path,
        instance: &Instance,
        ics: &IcSet,
        options: StoreOptions,
        vfs: Arc<dyn Vfs>,
    ) -> Result<DurableStore, StorageError> {
        vfs.create_dir_all(dir)?;
        if vfs.exists(&snapshot::manifest_path(dir)) {
            return Err(StorageError::AlreadyExists(dir.to_path_buf()));
        }
        let outcome = snapshot::write_with(vfs.as_ref(), dir, instance, ics, 0, None)?;
        let wal = Wal::create_with(vfs.as_ref(), &Self::wal_path(dir))?;
        Ok(DurableStore {
            dir: dir.to_path_buf(),
            options,
            vfs,
            inner: Mutex::new(StoreInner {
                wal,
                layout: outcome.layout,
                dirty: BTreeSet::new(),
                pending_syncs: 0,
                stats: StoreStats::default(),
            }),
            commit: Mutex::new(GroupState::default()),
            commit_cv: Condvar::new(),
        })
    }

    /// Open an existing store: verify the manifest and every referenced
    /// segment, sweep compaction debris, scan the WAL (truncating any
    /// torn tail), and hand back the surviving ops for the caller to
    /// replay. Fails with [`StorageError::NotAStore`] if `dir` has no
    /// manifest.
    pub fn open(
        dir: &Path,
        options: StoreOptions,
    ) -> Result<(DurableStore, Recovered), StorageError> {
        Self::open_with_vfs(dir, options, Arc::new(RealVfs))
    }

    /// [`DurableStore::open`] against an explicit [`Vfs`] — the
    /// fault-injection entry point.
    pub fn open_with_vfs(
        dir: &Path,
        options: StoreOptions,
        vfs: Arc<dyn Vfs>,
    ) -> Result<(DurableStore, Recovered), StorageError> {
        if !vfs.exists(&snapshot::manifest_path(dir)) {
            return Err(StorageError::NotAStore(dir.to_path_buf()));
        }
        let snap = snapshot::read_with(vfs.as_ref(), dir)?;
        // A crash mid-compaction can leave a half-written manifest.tmp
        // or segment files no manifest references; the committed
        // snapshot is intact (rename is the commit point), the debris
        // is deleted, never trusted.
        snapshot::sweep_with(vfs.as_ref(), dir, &snap.layout)?;

        let wal_path = Self::wal_path(dir);
        let (mut wal, scan) = if vfs.exists(&wal_path) {
            Wal::open_with(vfs.as_ref(), &wal_path)?
        } else {
            // Crash window between snapshot creation and WAL creation:
            // the snapshot alone is a complete, empty-log store.
            (
                Wal::create_with(vfs.as_ref(), &wal_path)?,
                Default::default(),
            )
        };
        // A WAL rebuilt empty (missing, or caught in the create window)
        // must not reuse sequence numbers the snapshot already covers.
        wal.ensure_seq_at_least(snap.layout.last_seq + 1);

        let schema = snap.instance.schema().clone();
        let mut ops = Vec::new();
        let mut frames_skipped = 0u64;
        let mut constraint_frames = 0u64;
        let mut last_seq = snap.layout.last_seq;
        // Relations the surviving ops touch are dirty relative to the
        // on-disk segments: the next compaction must rewrite them.
        let mut dirty = BTreeSet::new();
        for frame in &scan.frames {
            if frame.seq <= snap.layout.last_seq {
                frames_skipped += 1;
                continue;
            }
            let op = crate::codec::decode_op(&frame.payload, &schema)?;
            match &op {
                WalOp::Delta(d) => {
                    for a in d.added.iter().chain(d.removed.iter()) {
                        dirty.insert(a.rel);
                    }
                }
                WalOp::Constraint(_) => constraint_frames += 1,
            }
            ops.push((frame.seq, op));
            last_seq = frame.seq;
        }

        let report = RecoveryReport {
            snapshot_atoms: snap.instance.len(),
            snapshot_last_seq: snap.layout.last_seq,
            frames_applied: ops.len() as u64,
            constraint_frames,
            frames_skipped,
            bytes_truncated: scan.bytes_truncated,
            last_seq,
        };
        let store = DurableStore {
            dir: dir.to_path_buf(),
            options,
            vfs,
            inner: Mutex::new(StoreInner {
                wal,
                layout: snap.layout,
                dirty,
                pending_syncs: 0,
                stats: StoreStats::default(),
            }),
            commit: Mutex::new(GroupState {
                durable_seq: last_seq,
                ..GroupState::default()
            }),
            commit_cv: Condvar::new(),
        };
        Ok((
            store,
            Recovered {
                snapshot_instance: snap.instance,
                ics: snap.ics,
                ops,
                report,
            },
        ))
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn lock_inner(&self) -> std::sync::MutexGuard<'_, StoreInner> {
        self.inner.lock().expect("store lock")
    }

    /// Append one delta to the WAL and (per policy) make it durable;
    /// returns its sequence number. Per the WAL-before-state invariant,
    /// call this *before* mutating the in-memory instance.
    pub fn append_delta(&self, delta: &InstanceDelta) -> Result<u64, StorageError> {
        let rels: BTreeSet<RelId> = delta
            .added
            .iter()
            .chain(delta.removed.iter())
            .map(|a| a.rel)
            .collect();
        self.append_payload(encode_delta_op(delta), rels, false)
    }

    /// Append one constraint to the WAL and (per policy) make it
    /// durable; returns its sequence number. This is the O(delta) path
    /// behind `add_constraint` — no snapshot rewrite; recovery replays
    /// the frame.
    pub fn append_constraint(&self, con: &Constraint) -> Result<u64, StorageError> {
        self.append_payload(encode_constraint_op(con), BTreeSet::new(), true)
    }

    fn append_payload(
        &self,
        payload: Vec<u8>,
        dirty_rels: BTreeSet<RelId>,
        is_constraint: bool,
    ) -> Result<u64, StorageError> {
        let seq;
        {
            let mut inner = self.lock_inner();
            seq = inner.wal.append(&payload)?;
            inner.dirty.extend(dirty_rels);
            inner.stats.appends += 1;
            if is_constraint {
                inner.stats.constraint_frames += 1;
            }
            match self.options.fsync {
                FsyncPolicy::Always => {
                    if !self.options.group_commit {
                        inner.wal.sync()?;
                        inner.stats.fsyncs += 1;
                        return Ok(seq);
                    }
                    // Fall through to the group-commit rendezvous,
                    // outside the inner lock so other appenders can
                    // land frames for the leader's fsync to cover.
                }
                FsyncPolicy::EveryN(n) => {
                    inner.pending_syncs += 1;
                    if inner.pending_syncs >= n.max(1) {
                        inner.wal.sync()?;
                        inner.stats.fsyncs += 1;
                        inner.pending_syncs = 0;
                    }
                    return Ok(seq);
                }
                FsyncPolicy::Never => return Ok(seq),
            }
        }
        self.group_commit_wait(seq)?;
        Ok(seq)
    }

    /// Block until `seq` is covered by an fsync (ours or another
    /// thread's), becoming the group-commit leader if nobody is.
    fn group_commit_wait(&self, seq: u64) -> Result<(), StorageError> {
        let mut g = self.commit.lock().expect("commit lock");
        loop {
            if g.durable_seq >= seq {
                return Ok(());
            }
            if g.failed_seq >= seq {
                // The fsync that would have covered this frame failed;
                // the frame was never acknowledged as durable.
                return Err(StorageError::Io(io::Error::other(format!(
                    "group commit failed: {}",
                    g.failed_msg
                ))));
            }
            if !g.leader_active {
                g.leader_active = true;
                let durable_before = g.durable_seq;
                drop(g);
                let led = self.lead_group_commit(durable_before);
                let mut after = self.commit.lock().expect("commit lock");
                after.leader_active = false;
                match led {
                    Ok(written) => after.durable_seq = after.durable_seq.max(written),
                    Err((written, msg)) => {
                        after.failed_seq = after.failed_seq.max(written);
                        after.failed_msg = msg;
                    }
                }
                self.commit_cv.notify_all();
                g = after;
                // Loop around: re-check our own seq against the new
                // durable/failed horizons.
                continue;
            }
            g = self.commit_cv.wait(g).expect("commit lock");
        }
    }

    /// Issue the leader's fsync, optionally lingering up to the
    /// straggler window first. The linger is a poll, not a fixed sleep:
    /// it ends the moment `group_max_batch` frames are staged, so a
    /// full batch never pays the window and a lone appender pays it at
    /// most once. Returns the highest written seq the fsync covered, or
    /// that seq plus the failure message.
    fn lead_group_commit(&self, durable_before: u64) -> Result<u64, (u64, String)> {
        if self.options.group_window_us > 0 {
            let deadline =
                std::time::Instant::now() + Duration::from_micros(self.options.group_window_us);
            loop {
                let pending = self.lock_inner().wal.next_seq() - 1 - durable_before;
                if pending >= self.options.group_max_batch as u64
                    || std::time::Instant::now() >= deadline
                {
                    break;
                }
                // Let stragglers run and stage their frames; the window
                // bounds the spin.
                std::thread::yield_now();
            }
        }
        let mut inner = self.lock_inner();
        let written = inner.wal.next_seq() - 1;
        match inner.wal.sync() {
            Ok(()) => {
                inner.stats.fsyncs += 1;
                inner.stats.group_commits += 1;
                let batch = written.saturating_sub(durable_before);
                inner.stats.group_batch_frames += batch;
                inner.stats.group_batch_max = inner.stats.group_batch_max.max(batch);
                Ok(written)
            }
            Err(e) => Err((written, e.to_string())),
        }
    }

    /// Force all appended frames to stable storage, regardless of
    /// policy.
    pub fn sync(&self) -> Result<(), StorageError> {
        let written;
        {
            let mut inner = self.lock_inner();
            inner.wal.sync()?;
            inner.stats.fsyncs += 1;
            inner.pending_syncs = 0;
            written = inner.wal.next_seq() - 1;
        }
        self.advance_durable(written);
        Ok(())
    }

    /// Record that everything at or below `written` is durable and wake
    /// any group-commit waiters it unblocks.
    fn advance_durable(&self, written: u64) {
        let mut g = self.commit.lock().expect("commit lock");
        if written > g.durable_seq {
            g.durable_seq = written;
            self.commit_cv.notify_all();
        }
    }

    /// The highest sequence number handed out so far (0 if none).
    pub fn last_seq(&self) -> u64 {
        self.lock_inner().wal.next_seq() - 1
    }

    /// Current WAL size in bytes.
    pub fn wal_bytes(&self) -> Result<u64, StorageError> {
        self.lock_inner().wal.len_bytes()
    }

    /// Current snapshot size in bytes (manifest + referenced segments).
    pub fn snapshot_bytes(&self) -> u64 {
        self.lock_inner().layout.total_bytes
    }

    /// A copy of the write-path counters, with
    /// [`StoreStats::wal_bytes`] sampled at call time.
    pub fn stats(&self) -> StoreStats {
        let inner = self.lock_inner();
        let mut stats = inner.stats;
        stats.wal_bytes = inner.wal.len_bytes().unwrap_or(0);
        stats
    }

    /// `true` iff the WAL has outgrown the configured fraction of the
    /// snapshot.
    pub fn wants_compaction(&self) -> Result<bool, StorageError> {
        let inner = self.lock_inner();
        let wal_bytes = inner.wal.len_bytes()?;
        if wal_bytes < self.options.compact_min_wal_bytes {
            return Ok(false);
        }
        // wal > snapshot * num / den, overflow-safe.
        Ok(wal_bytes as u128 * self.options.compact_den as u128
            > inner.layout.total_bytes as u128 * self.options.compact_num as u128)
    }

    /// Fold the WAL into the snapshot and reset the log, rewriting
    /// *only* the segments of relations touched since the last
    /// compaction and reusing every other segment by reference. The
    /// caller passes the *current* in-memory state — by the
    /// WAL-before-state invariant it covers every acknowledged frame.
    pub fn compact(&self, instance: &Instance, ics: &IcSet) -> Result<(), StorageError> {
        self.compact_impl(instance, ics, false)
    }

    /// Compaction that rewrites every segment regardless of the dirty
    /// set — the full-price baseline (also what benchmarks compare the
    /// incremental path against).
    pub fn compact_full(&self, instance: &Instance, ics: &IcSet) -> Result<(), StorageError> {
        self.compact_impl(instance, ics, true)
    }

    fn compact_impl(
        &self,
        instance: &Instance,
        ics: &IcSet,
        full: bool,
    ) -> Result<(), StorageError> {
        let written;
        {
            let mut inner = self.lock_inner();
            let last_seq = inner.wal.next_seq() - 1;
            written = last_seq;
            let all_dirty: BTreeSet<RelId>;
            let dirty: &BTreeSet<RelId> = if full {
                // "Everything is dirty" rather than `prev: None`: the
                // epoch still advances, so fresh segments never reuse a
                // name the live manifest references.
                all_dirty = instance.schema().rel_ids().collect();
                &all_dirty
            } else {
                &inner.dirty
            };
            let outcome = snapshot::write_with(
                self.vfs.as_ref(),
                &self.dir,
                instance,
                ics,
                last_seq,
                Some((&inner.layout, dirty)),
            )?;
            // The new manifest is committed; replaced segment files are
            // garbage. Deleting them is best-effort housekeeping —
            // leftovers are swept on the next open.
            for seg in &inner.layout.segments {
                if !outcome.layout.references(&seg.name) {
                    let _ = self.vfs.remove_file(&self.dir.join(&seg.name));
                }
            }
            inner.layout = outcome.layout;
            inner.dirty.clear();
            inner.pending_syncs = 0;
            inner.stats.compactions += 1;
            inner.stats.segments_written += outcome.segments_written;
            inner.stats.segments_reused += outcome.segments_reused;
            inner.wal.reset()?;
        }
        // Every folded frame is durable in the snapshot now; unblock any
        // group-commit waiters still parked on those seqs.
        self.advance_durable(written);
        Ok(())
    }

    /// Compact if [`DurableStore::wants_compaction`]; returns whether a
    /// compaction ran.
    pub fn maybe_compact(&self, instance: &Instance, ics: &IcSet) -> Result<bool, StorageError> {
        if self.wants_compaction()? {
            self.compact(instance, ics)?;
            Ok(true)
        } else {
            Ok(false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_relational::{s, DatabaseAtom, Schema, Tuple};
    use std::fs::{self, OpenOptions};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cqa-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn seed() -> (Instance, IcSet) {
        let schema = Schema::builder()
            .relation("r", ["x", "y"])
            .finish()
            .unwrap()
            .into_shared();
        let mut inst = Instance::empty(schema);
        inst.insert_named("r", [s("a"), s("b")]).unwrap();
        (inst, IcSet::default())
    }

    fn atom(inst: &Instance, x: &str, y: &str) -> DatabaseAtom {
        DatabaseAtom::new(
            inst.schema().require("r").unwrap(),
            Tuple::new(vec![s(x), s(y)]),
        )
    }

    fn replayed(rec: &Recovered) -> Instance {
        let mut inst = rec.snapshot_instance.clone();
        for (_, op) in &rec.ops {
            if let WalOp::Delta(d) = op {
                inst.apply(d.added.iter().cloned(), d.removed.iter().cloned());
            }
        }
        inst
    }

    #[test]
    fn create_then_open_recovers_seed_state() {
        let dir = tmpdir("seed");
        let (inst, ics) = seed();
        let store = DurableStore::create(&dir, &inst, &ics, StoreOptions::default()).unwrap();
        assert_eq!(store.last_seq(), 0);
        drop(store);

        let (store, rec) = DurableStore::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(rec.snapshot_instance, inst);
        assert!(rec.ops.is_empty());
        assert_eq!(
            rec.report,
            RecoveryReport {
                snapshot_atoms: 1,
                ..Default::default()
            }
        );
        assert_eq!(store.last_seq(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_refuses_to_clobber() {
        let dir = tmpdir("clobber");
        let (inst, ics) = seed();
        DurableStore::create(&dir, &inst, &ics, StoreOptions::default()).unwrap();
        let err = DurableStore::create(&dir, &inst, &ics, StoreOptions::default()).unwrap_err();
        assert!(matches!(err, StorageError::AlreadyExists(_)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_missing_is_not_a_store() {
        let dir = tmpdir("missing");
        fs::create_dir_all(&dir).unwrap();
        let err = DurableStore::open(&dir, StoreOptions::default()).unwrap_err();
        assert!(matches!(err, StorageError::NotAStore(_)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn appended_deltas_come_back_in_order() {
        let dir = tmpdir("deltas");
        let (mut inst, ics) = seed();
        let store = DurableStore::create(&dir, &inst, &ics, StoreOptions::default()).unwrap();
        for k in 0..5 {
            let a = atom(&inst, &format!("w{k}"), "y");
            let mut delta = InstanceDelta::default();
            delta.added.insert(a.clone());
            assert_eq!(store.append_delta(&delta).unwrap(), k + 1);
            inst.insert(a.rel, a.tuple).unwrap();
        }
        let stats = store.stats();
        assert_eq!(stats.appends, 5);
        assert_eq!(stats.fsyncs, 5, "one fsync per solo append under Always");
        drop(store);

        let (store, rec) = DurableStore::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(rec.ops.len(), 5);
        let seqs: Vec<u64> = rec.ops.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
        assert_eq!(rec.report.last_seq, 5);
        assert_eq!(store.last_seq(), 5, "appends resume past recovery");
        assert_eq!(replayed(&rec), inst);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_appends_share_group_fsyncs() {
        let dir = tmpdir("group");
        let (inst, ics) = seed();
        let opts = StoreOptions {
            group_window_us: 2_000,
            group_max_batch: 8,
            ..StoreOptions::default()
        };
        let store = Arc::new(DurableStore::create(&dir, &inst, &ics, opts).unwrap());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let store = Arc::clone(&store);
                let inst = inst.clone();
                std::thread::spawn(move || {
                    for k in 0..4 {
                        let a = atom(&inst, &format!("t{t}w{k}"), "y");
                        let mut delta = InstanceDelta::default();
                        delta.added.insert(a);
                        store.append_delta(&delta).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let stats = store.stats();
        assert_eq!(stats.appends, 32);
        assert!(
            stats.fsyncs < 32,
            "32 concurrent appends must coalesce below 32 fsyncs, got {}",
            stats.fsyncs
        );
        assert!(stats.group_commits > 0);
        assert_eq!(stats.group_batch_frames, 32, "every frame acked by a group");
        assert!(stats.group_batch_max >= 2);
        assert!(stats.mean_group_batch() > 1.0);
        drop(store);

        let (_, rec) = DurableStore::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(rec.ops.len(), 32, "every acknowledged frame recovered");
        assert_eq!(replayed(&rec).len(), 33);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn constraint_frames_recover_without_compaction() {
        let dir = tmpdir("confr");
        let schema = Schema::builder()
            .relation("r", ["x", "y"])
            .finish()
            .unwrap()
            .into_shared();
        let inst = Instance::empty(schema.clone());
        let store =
            DurableStore::create(&dir, &inst, &IcSet::default(), StoreOptions::default()).unwrap();
        let con: Constraint = cqa_constraints::Nnc::new(&schema, "nn", "r", 0)
            .unwrap()
            .into();
        assert_eq!(store.append_constraint(&con).unwrap(), 1);
        let stats = store.stats();
        assert_eq!(stats.constraint_frames, 1);
        assert_eq!(stats.compactions, 0, "constraint append is O(delta)");
        drop(store);

        let (_, rec) = DurableStore::open(&dir, StoreOptions::default()).unwrap();
        assert!(rec.ics.is_empty(), "snapshot predates the constraint");
        assert_eq!(rec.report.constraint_frames, 1);
        assert_eq!(rec.report.frames_applied, 1);
        match &rec.ops[..] {
            [(1, WalOp::Constraint(c))] => assert_eq!(c, &con),
            other => panic!("expected one constraint op, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn incremental_compaction_rewrites_only_dirty_segments() {
        let dir = tmpdir("incr");
        let schema = Schema::builder()
            .relation("hot", ["x", "y"])
            .relation("cold", ["x", "y"])
            .finish()
            .unwrap()
            .into_shared();
        let mut inst = Instance::empty(schema.clone());
        inst.insert_named("cold", [s("frozen"), s("row")]).unwrap();
        let ics = IcSet::default();
        let store = DurableStore::create(&dir, &inst, &ics, StoreOptions::default()).unwrap();

        // Touch only `hot`, then compact: `cold`'s segment is reused.
        let hot = schema.require("hot").unwrap();
        let a = DatabaseAtom::new(hot, Tuple::new(vec![s("h"), s("1")]));
        let mut delta = InstanceDelta::default();
        delta.added.insert(a.clone());
        store.append_delta(&delta).unwrap();
        inst.insert(a.rel, a.tuple).unwrap();
        store.compact(&inst, &ics).unwrap();
        let stats = store.stats();
        assert_eq!(stats.compactions, 1);
        assert_eq!((stats.segments_written, stats.segments_reused), (1, 1));

        // A full compaction rewrites everything.
        store.compact_full(&inst, &ics).unwrap();
        let stats = store.stats();
        assert_eq!((stats.segments_written, stats.segments_reused), (3, 1));
        drop(store);

        let (_, rec) = DurableStore::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(rec.snapshot_instance, inst);
        assert!(rec.ops.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovered_ops_mark_their_relations_dirty() {
        // Deltas that live only in the WAL must be folded into fresh
        // segments at the next compaction even though this handle never
        // appended them.
        let dir = tmpdir("recdirty");
        let (mut inst, ics) = seed();
        let store = DurableStore::create(&dir, &inst, &ics, StoreOptions::default()).unwrap();
        let a = atom(&inst, "walonly", "y");
        let mut delta = InstanceDelta::default();
        delta.added.insert(a.clone());
        store.append_delta(&delta).unwrap();
        inst.insert(a.rel, a.tuple).unwrap();
        drop(store);

        let (store, rec) = DurableStore::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(rec.ops.len(), 1);
        store.compact(&inst, &ics).unwrap();
        let stats = store.stats();
        assert_eq!(
            stats.segments_written, 1,
            "recovered delta makes its relation's segment dirty"
        );
        drop(store);
        let (_, rec) = DurableStore::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(rec.snapshot_instance, inst, "compacted state holds the row");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_folds_wal_and_survives_reopen() {
        let dir = tmpdir("compact");
        let (mut inst, ics) = seed();
        let store = DurableStore::create(&dir, &inst, &ics, StoreOptions::default()).unwrap();
        for k in 0..3 {
            let a = atom(&inst, &format!("c{k}"), "y");
            let mut delta = InstanceDelta::default();
            delta.added.insert(a.clone());
            store.append_delta(&delta).unwrap();
            inst.insert(a.rel, a.tuple).unwrap();
        }
        store.compact(&inst, &ics).unwrap();
        assert_eq!(store.last_seq(), 3, "seq survives compaction");
        // One more write after compaction.
        let a = atom(&inst, "post", "y");
        let mut delta = InstanceDelta::default();
        delta.added.insert(a.clone());
        assert_eq!(store.append_delta(&delta).unwrap(), 4);
        inst.insert(a.rel, a.tuple).unwrap();
        drop(store);

        let (_, rec) = DurableStore::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(rec.report.snapshot_last_seq, 3);
        assert_eq!(rec.report.frames_applied, 1);
        assert_eq!(rec.report.frames_skipped, 0);
        assert_eq!(replayed(&rec), inst);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_crash_window_skips_covered_frames() {
        // Simulate: snapshot written at seq 2, but the WAL reset never
        // happened (crash between the two steps). Recovery must skip the
        // covered frames instead of double-applying them.
        let dir = tmpdir("window");
        let (mut inst, ics) = seed();
        let store = DurableStore::create(&dir, &inst, &ics, StoreOptions::default()).unwrap();
        for k in 0..2 {
            let a = atom(&inst, &format!("v{k}"), "y");
            let mut delta = InstanceDelta::default();
            delta.added.insert(a.clone());
            store.append_delta(&delta).unwrap();
            inst.insert(a.rel, a.tuple).unwrap();
        }
        drop(store);
        // Write the snapshot directly, bypassing the WAL reset.
        snapshot::write(&dir, &inst, &ics, 2, None).unwrap();

        let (store, rec) = DurableStore::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(rec.report.frames_skipped, 2);
        assert_eq!(rec.report.frames_applied, 0);
        assert_eq!(rec.snapshot_instance, inst);
        assert_eq!(store.last_seq(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_manifest_tmp_and_orphan_segments_are_swept() {
        let dir = tmpdir("tmp");
        let (inst, ics) = seed();
        DurableStore::create(&dir, &inst, &ics, StoreOptions::default()).unwrap();
        let tmp = dir.join("manifest.tmp");
        let orphan = dir.join("seg-0-77");
        fs::write(&tmp, b"half-written garbage").unwrap();
        fs::write(&orphan, b"unreferenced segment").unwrap();
        let (_, rec) = DurableStore::open(&dir, StoreOptions::default()).unwrap();
        assert!(!tmp.exists(), "stale tmp removed");
        assert!(!orphan.exists(), "orphaned segment removed");
        assert_eq!(rec.snapshot_instance, inst);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wants_compaction_respects_floor_and_fraction() {
        let dir = tmpdir("wants");
        let (inst, ics) = seed();
        // No floor: any WAL bigger than the snapshot triggers.
        let opts = StoreOptions {
            compact_min_wal_bytes: 0,
            ..StoreOptions::default()
        };
        let store = DurableStore::create(&dir, &inst, &ics, opts).unwrap();
        assert!(!store.wants_compaction().unwrap(), "empty WAL never wants");
        let big = "x".repeat(store.snapshot_bytes() as usize);
        let mut delta = InstanceDelta::default();
        delta.added.insert(atom(&inst, &big, "y"));
        store.append_delta(&delta).unwrap();
        assert!(store.wants_compaction().unwrap());
        // With the default 64 KiB floor the same WAL is left alone.
        let (floored, _) = DurableStore::open(&dir, StoreOptions::default()).unwrap();
        assert!(!floored.wants_compaction().unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_wal_tail_surfaces_in_report_and_keeps_prefix() {
        let dir = tmpdir("torn");
        let (mut inst, ics) = seed();
        let store = DurableStore::create(&dir, &inst, &ics, StoreOptions::default()).unwrap();
        for k in 0..3 {
            let a = atom(&inst, &format!("t{k}"), "y");
            let mut delta = InstanceDelta::default();
            delta.added.insert(a.clone());
            store.append_delta(&delta).unwrap();
            inst.insert(a.rel, a.tuple).unwrap();
        }
        drop(store);
        // Tear mid-frame.
        let wal_path = dir.join("wal");
        let len = fs::metadata(&wal_path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&wal_path)
            .unwrap()
            .set_len(len - 5)
            .unwrap();

        let (store, rec) = DurableStore::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(rec.report.frames_applied, 2, "good prefix survives");
        assert!(rec.report.bytes_truncated > 0);
        assert_eq!(rec.report.last_seq, 2);
        assert_eq!(store.last_seq(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }
}
