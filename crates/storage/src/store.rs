//! The durable store: one directory holding a snapshot plus a WAL, with
//! the recovery and compaction protocol between them.
//!
//! ## Directory layout
//!
//! ```text
//! <dir>/snapshot       complete state as of some WAL sequence number
//! <dir>/wal            InstanceDelta frames appended since that point
//! <dir>/snapshot.tmp   transient; a crash mid-compaction can leave one
//! ```
//!
//! ## Protocol invariants
//!
//! - **WAL-before-state**: callers append a delta (and, per
//!   [`FsyncPolicy`], sync it) *before* mutating in-memory state. An
//!   acknowledged write is therefore always recoverable.
//! - **Monotonic sequence numbers**: frame seqs start at 1 and are never
//!   reused, even across compactions. The snapshot records the highest
//!   seq folded into it (`last_seq`); recovery applies only frames with
//!   `seq > last_seq`, so every crash window around compaction —
//!   snapshot written but WAL not yet reset, or reset but the process
//!   died before acknowledging — resolves to the same state.
//! - **Atomic snapshot replace**: compaction writes `snapshot.tmp`,
//!   syncs, renames over `snapshot`, syncs the directory. A stale
//!   `snapshot.tmp` found on open is deleted, never trusted.
//!
//! The store moves bytes and sequence numbers; it never interprets the
//! deltas. Replaying them through the incremental grounding machinery is
//! the facade's job — that is what makes a reopened database arrive
//! *warm*, not just consistent.

use crate::codec::{decode_delta, encode_delta};
use crate::error::StorageError;
use crate::snapshot;
use crate::vfs::{RealVfs, Vfs};
use crate::wal::{FsyncPolicy, Wal};
use cqa_constraints::IcSet;
use cqa_relational::{Instance, InstanceDelta};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Tuning knobs for a [`DurableStore`].
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// When appended WAL frames are flushed to stable storage.
    pub fsync: FsyncPolicy,
    /// Compaction triggers when `wal_bytes > snapshot_bytes * num / den`
    /// (and the WAL exceeds [`StoreOptions::compact_min_wal_bytes`]).
    pub compact_num: u64,
    /// Denominator of the compaction fraction.
    pub compact_den: u64,
    /// Compaction never triggers below this many WAL bytes — tiny
    /// stores would otherwise snapshot on every write.
    pub compact_min_wal_bytes: u64,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            fsync: FsyncPolicy::Always,
            compact_num: 1,
            compact_den: 1,
            compact_min_wal_bytes: 64 * 1024,
        }
    }
}

/// What recovery found and did, for observability and tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Atoms in the snapshot (before WAL replay).
    pub snapshot_atoms: usize,
    /// Highest sequence number folded into the snapshot.
    pub snapshot_last_seq: u64,
    /// Frames replayed on top of the snapshot.
    pub frames_applied: u64,
    /// Intact frames skipped because the snapshot already covered them
    /// (the compaction-then-crash window).
    pub frames_skipped: u64,
    /// Bytes dropped from the WAL's torn/corrupt tail (0 on clean
    /// shutdown).
    pub bytes_truncated: u64,
    /// Highest sequence number in the recovered state — the durable
    /// write horizon. Everything at or below it was acknowledged and
    /// survived; nothing above it was ever acknowledged.
    pub last_seq: u64,
}

/// The result of opening an existing store.
#[derive(Debug)]
pub struct Recovered {
    /// The instance exactly as the snapshot recorded it (WAL deltas
    /// **not** yet applied) — the caller replays [`Recovered::deltas`]
    /// through its own incremental paths.
    pub snapshot_instance: Instance,
    /// The persisted constraint set.
    pub ics: IcSet,
    /// Surviving WAL deltas in sequence order, each past the snapshot
    /// horizon.
    pub deltas: Vec<(u64, InstanceDelta)>,
    /// What recovery found and did.
    pub report: RecoveryReport,
}

/// A snapshot + WAL pair rooted at one directory.
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
    wal: Wal,
    snapshot_bytes: u64,
    options: StoreOptions,
    vfs: Arc<dyn Vfs>,
}

impl DurableStore {
    fn snapshot_path(dir: &Path) -> PathBuf {
        dir.join("snapshot")
    }

    fn wal_path(dir: &Path) -> PathBuf {
        dir.join("wal")
    }

    /// Create a fresh store at `dir` (creating the directory if needed)
    /// seeded with `instance` and `ics`. Fails with
    /// [`StorageError::AlreadyExists`] if `dir` already holds a store.
    pub fn create(
        dir: &Path,
        instance: &Instance,
        ics: &IcSet,
        options: StoreOptions,
    ) -> Result<DurableStore, StorageError> {
        Self::create_with_vfs(dir, instance, ics, options, Arc::new(RealVfs))
    }

    /// [`DurableStore::create`] against an explicit [`Vfs`] — the
    /// fault-injection entry point.
    pub fn create_with_vfs(
        dir: &Path,
        instance: &Instance,
        ics: &IcSet,
        options: StoreOptions,
        vfs: Arc<dyn Vfs>,
    ) -> Result<DurableStore, StorageError> {
        vfs.create_dir_all(dir)?;
        let snap_path = Self::snapshot_path(dir);
        if vfs.exists(&snap_path) {
            return Err(StorageError::AlreadyExists(dir.to_path_buf()));
        }
        let snapshot_bytes = snapshot::write_with(vfs.as_ref(), &snap_path, instance, ics, 0)?;
        let wal = Wal::create_with(vfs.as_ref(), &Self::wal_path(dir), options.fsync)?;
        Ok(DurableStore {
            dir: dir.to_path_buf(),
            wal,
            snapshot_bytes,
            options,
            vfs,
        })
    }

    /// Open an existing store: verify the snapshot, scan the WAL
    /// (truncating any torn tail), and hand back the surviving deltas
    /// for the caller to replay. Fails with [`StorageError::NotAStore`]
    /// if `dir` has no snapshot.
    pub fn open(
        dir: &Path,
        options: StoreOptions,
    ) -> Result<(DurableStore, Recovered), StorageError> {
        Self::open_with_vfs(dir, options, Arc::new(RealVfs))
    }

    /// [`DurableStore::open`] against an explicit [`Vfs`] — the
    /// fault-injection entry point.
    pub fn open_with_vfs(
        dir: &Path,
        options: StoreOptions,
        vfs: Arc<dyn Vfs>,
    ) -> Result<(DurableStore, Recovered), StorageError> {
        let snap_path = Self::snapshot_path(dir);
        if !vfs.exists(&snap_path) {
            return Err(StorageError::NotAStore(dir.to_path_buf()));
        }
        // A crash mid-compaction can leave a half-written tmp file; the
        // real snapshot is intact (rename is the commit point).
        let stale_tmp = snap_path.with_extension("tmp");
        if vfs.exists(&stale_tmp) {
            vfs.remove_file(&stale_tmp)?;
        }

        let snap = snapshot::read_with(vfs.as_ref(), &snap_path)?;

        let wal_path = Self::wal_path(dir);
        let (mut wal, scan) = if vfs.exists(&wal_path) {
            Wal::open_with(vfs.as_ref(), &wal_path, options.fsync)?
        } else {
            // Crash window between snapshot creation and WAL creation:
            // the snapshot alone is a complete, empty-log store.
            (
                Wal::create_with(vfs.as_ref(), &wal_path, options.fsync)?,
                Default::default(),
            )
        };
        // A WAL rebuilt empty (missing, or caught in the create window)
        // must not reuse sequence numbers the snapshot already covers.
        wal.ensure_seq_at_least(snap.last_seq + 1);

        let mut deltas = Vec::new();
        let mut frames_skipped = 0u64;
        let mut last_seq = snap.last_seq;
        for frame in &scan.frames {
            if frame.seq <= snap.last_seq {
                frames_skipped += 1;
                continue;
            }
            deltas.push((frame.seq, decode_delta(&frame.payload)?));
            last_seq = frame.seq;
        }

        let report = RecoveryReport {
            snapshot_atoms: snap.instance.len(),
            snapshot_last_seq: snap.last_seq,
            frames_applied: deltas.len() as u64,
            frames_skipped,
            bytes_truncated: scan.bytes_truncated,
            last_seq,
        };
        let store = DurableStore {
            dir: dir.to_path_buf(),
            wal,
            snapshot_bytes: snap.bytes,
            options,
            vfs,
        };
        Ok((
            store,
            Recovered {
                snapshot_instance: snap.instance,
                ics: snap.ics,
                deltas,
                report,
            },
        ))
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Append one delta to the WAL; returns its sequence number. Per the
    /// WAL-before-state invariant, call this *before* mutating the
    /// in-memory instance.
    pub fn append_delta(&mut self, delta: &InstanceDelta) -> Result<u64, StorageError> {
        self.wal.append(&encode_delta(delta))
    }

    /// Force all appended frames to stable storage, regardless of
    /// policy.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.wal.sync()
    }

    /// The highest sequence number acknowledged so far (0 if none).
    pub fn last_seq(&self) -> u64 {
        self.wal.next_seq() - 1
    }

    /// Current WAL size in bytes.
    pub fn wal_bytes(&self) -> Result<u64, StorageError> {
        self.wal.len_bytes()
    }

    /// Current snapshot size in bytes.
    pub fn snapshot_bytes(&self) -> u64 {
        self.snapshot_bytes
    }

    /// `true` iff the WAL has outgrown the configured fraction of the
    /// snapshot.
    pub fn wants_compaction(&self) -> Result<bool, StorageError> {
        let wal_bytes = self.wal.len_bytes()?;
        if wal_bytes < self.options.compact_min_wal_bytes {
            return Ok(false);
        }
        // wal > snapshot * num / den, overflow-safe.
        Ok(wal_bytes as u128 * self.options.compact_den as u128
            > self.snapshot_bytes as u128 * self.options.compact_num as u128)
    }

    /// Fold the WAL into a fresh snapshot of `instance` + `ics` and
    /// reset the log. The caller passes the *current* in-memory state —
    /// by the WAL-before-state invariant it covers every acknowledged
    /// frame.
    pub fn compact(&mut self, instance: &Instance, ics: &IcSet) -> Result<(), StorageError> {
        let last_seq = self.last_seq();
        self.snapshot_bytes = snapshot::write_with(
            self.vfs.as_ref(),
            &Self::snapshot_path(&self.dir),
            instance,
            ics,
            last_seq,
        )?;
        self.wal.reset()
    }

    /// Compact if [`DurableStore::wants_compaction`]; returns whether a
    /// compaction ran.
    pub fn maybe_compact(
        &mut self,
        instance: &Instance,
        ics: &IcSet,
    ) -> Result<bool, StorageError> {
        if self.wants_compaction()? {
            self.compact(instance, ics)?;
            Ok(true)
        } else {
            Ok(false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_relational::{s, DatabaseAtom, Schema, Tuple};
    use std::fs::{self, OpenOptions};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cqa-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn seed() -> (Instance, IcSet) {
        let schema = Schema::builder()
            .relation("r", ["x", "y"])
            .finish()
            .unwrap()
            .into_shared();
        let mut inst = Instance::empty(schema);
        inst.insert_named("r", [s("a"), s("b")]).unwrap();
        (inst, IcSet::default())
    }

    fn atom(inst: &Instance, x: &str, y: &str) -> DatabaseAtom {
        DatabaseAtom::new(
            inst.schema().require("r").unwrap(),
            Tuple::new(vec![s(x), s(y)]),
        )
    }

    #[test]
    fn create_then_open_recovers_seed_state() {
        let dir = tmpdir("seed");
        let (inst, ics) = seed();
        let store = DurableStore::create(&dir, &inst, &ics, StoreOptions::default()).unwrap();
        assert_eq!(store.last_seq(), 0);
        drop(store);

        let (store, rec) = DurableStore::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(rec.snapshot_instance, inst);
        assert!(rec.deltas.is_empty());
        assert_eq!(
            rec.report,
            RecoveryReport {
                snapshot_atoms: 1,
                ..Default::default()
            }
        );
        assert_eq!(store.last_seq(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_refuses_to_clobber() {
        let dir = tmpdir("clobber");
        let (inst, ics) = seed();
        DurableStore::create(&dir, &inst, &ics, StoreOptions::default()).unwrap();
        let err = DurableStore::create(&dir, &inst, &ics, StoreOptions::default()).unwrap_err();
        assert!(matches!(err, StorageError::AlreadyExists(_)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_missing_is_not_a_store() {
        let dir = tmpdir("missing");
        fs::create_dir_all(&dir).unwrap();
        let err = DurableStore::open(&dir, StoreOptions::default()).unwrap_err();
        assert!(matches!(err, StorageError::NotAStore(_)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn appended_deltas_come_back_in_order() {
        let dir = tmpdir("deltas");
        let (mut inst, ics) = seed();
        let mut store = DurableStore::create(&dir, &inst, &ics, StoreOptions::default()).unwrap();
        for k in 0..5 {
            let a = atom(&inst, &format!("w{k}"), "y");
            let mut delta = InstanceDelta::default();
            delta.added.insert(a.clone());
            assert_eq!(store.append_delta(&delta).unwrap(), k + 1);
            inst.insert(a.rel, a.tuple).unwrap();
        }
        drop(store);

        let (store, rec) = DurableStore::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(rec.deltas.len(), 5);
        let seqs: Vec<u64> = rec.deltas.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
        assert_eq!(rec.report.last_seq, 5);
        assert_eq!(store.last_seq(), 5, "appends resume past recovery");
        // Replaying onto the snapshot reproduces the live state.
        let mut replayed = rec.snapshot_instance;
        for (_, d) in &rec.deltas {
            replayed.apply(d.added.iter().cloned(), d.removed.iter().cloned());
        }
        assert_eq!(replayed, inst);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_folds_wal_and_survives_reopen() {
        let dir = tmpdir("compact");
        let (mut inst, ics) = seed();
        let mut store = DurableStore::create(&dir, &inst, &ics, StoreOptions::default()).unwrap();
        for k in 0..3 {
            let a = atom(&inst, &format!("c{k}"), "y");
            let mut delta = InstanceDelta::default();
            delta.added.insert(a.clone());
            store.append_delta(&delta).unwrap();
            inst.insert(a.rel, a.tuple).unwrap();
        }
        store.compact(&inst, &ics).unwrap();
        assert_eq!(store.last_seq(), 3, "seq survives compaction");
        // One more write after compaction.
        let a = atom(&inst, "post", "y");
        let mut delta = InstanceDelta::default();
        delta.added.insert(a.clone());
        assert_eq!(store.append_delta(&delta).unwrap(), 4);
        inst.insert(a.rel, a.tuple).unwrap();
        drop(store);

        let (_, rec) = DurableStore::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(rec.report.snapshot_last_seq, 3);
        assert_eq!(rec.report.frames_applied, 1);
        assert_eq!(rec.report.frames_skipped, 0);
        let mut replayed = rec.snapshot_instance;
        for (_, d) in &rec.deltas {
            replayed.apply(d.added.iter().cloned(), d.removed.iter().cloned());
        }
        assert_eq!(replayed, inst);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_crash_window_skips_covered_frames() {
        // Simulate: snapshot written at seq 2, but the WAL reset never
        // happened (crash between the two steps). Recovery must skip the
        // covered frames instead of double-applying them.
        let dir = tmpdir("window");
        let (mut inst, ics) = seed();
        let mut store = DurableStore::create(&dir, &inst, &ics, StoreOptions::default()).unwrap();
        for k in 0..2 {
            let a = atom(&inst, &format!("v{k}"), "y");
            let mut delta = InstanceDelta::default();
            delta.added.insert(a.clone());
            store.append_delta(&delta).unwrap();
            inst.insert(a.rel, a.tuple).unwrap();
        }
        // Write the snapshot directly, bypassing the WAL reset.
        snapshot::write(&DurableStore::snapshot_path(&dir), &inst, &ics, 2).unwrap();
        drop(store);

        let (store, rec) = DurableStore::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(rec.report.frames_skipped, 2);
        assert_eq!(rec.report.frames_applied, 0);
        assert_eq!(rec.snapshot_instance, inst);
        assert_eq!(store.last_seq(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_snapshot_tmp_is_swept() {
        let dir = tmpdir("tmp");
        let (inst, ics) = seed();
        DurableStore::create(&dir, &inst, &ics, StoreOptions::default()).unwrap();
        let tmp = dir.join("snapshot.tmp");
        fs::write(&tmp, b"half-written garbage").unwrap();
        let (_, rec) = DurableStore::open(&dir, StoreOptions::default()).unwrap();
        assert!(!tmp.exists(), "stale tmp removed");
        assert_eq!(rec.snapshot_instance, inst);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wants_compaction_respects_floor_and_fraction() {
        let dir = tmpdir("wants");
        let (inst, ics) = seed();
        // No floor: any WAL bigger than the snapshot triggers.
        let opts = StoreOptions {
            compact_min_wal_bytes: 0,
            ..StoreOptions::default()
        };
        let mut store = DurableStore::create(&dir, &inst, &ics, opts).unwrap();
        assert!(!store.wants_compaction().unwrap(), "empty WAL never wants");
        let big = "x".repeat(store.snapshot_bytes() as usize);
        let mut delta = InstanceDelta::default();
        delta.added.insert(atom(&inst, &big, "y"));
        store.append_delta(&delta).unwrap();
        assert!(store.wants_compaction().unwrap());
        // With the default 64 KiB floor the same WAL is left alone.
        let (floored, _) = DurableStore::open(&dir, StoreOptions::default()).unwrap();
        assert!(!floored.wants_compaction().unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_wal_tail_surfaces_in_report_and_keeps_prefix() {
        let dir = tmpdir("torn");
        let (mut inst, ics) = seed();
        let mut store = DurableStore::create(&dir, &inst, &ics, StoreOptions::default()).unwrap();
        for k in 0..3 {
            let a = atom(&inst, &format!("t{k}"), "y");
            let mut delta = InstanceDelta::default();
            delta.added.insert(a.clone());
            store.append_delta(&delta).unwrap();
            inst.insert(a.rel, a.tuple).unwrap();
        }
        drop(store);
        // Tear mid-frame.
        let wal_path = dir.join("wal");
        let len = fs::metadata(&wal_path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&wal_path)
            .unwrap()
            .set_len(len - 5)
            .unwrap();

        let (store, rec) = DurableStore::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(rec.report.frames_applied, 2, "good prefix survives");
        assert!(rec.report.bytes_truncated > 0);
        assert_eq!(rec.report.last_seq, 2);
        assert_eq!(store.last_seq(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }
}
