//! Byte-level encoding shared by the WAL and the snapshot: fixed-width
//! little-endian primitives, length-prefixed strings, CRC32, and the
//! symbol-remapping value codec.
//!
//! ## Symbol remapping
//!
//! [`Symbol`](cqa_relational::Symbol) ids are *process-local*: the global
//! interner assigns dense `u32`s in first-sight order, so the id of
//! `"alice"` in the process that wrote a file tells the process that
//! reads it nothing. Every serialized section that contains values
//! therefore carries its own **symbol table** — the strings of the
//! symbols it references, in *file-local* dense id order — and values
//! encode file-local ids. The writer side is [`SymbolSink`] (assigns
//! local ids in first-use order); the reader side is [`SymbolSource`]
//! (re-interns each string through the *current* process's interner and
//! maps local id → live [`Symbol`]). Ordering is unaffected by the
//! remap because `Symbol`'s `Ord` is lexicographic on the resolved text,
//! never on the id — the `symbol_roundtrip` property suite pins this.

use crate::error::StorageError;
use cqa_constraints::{CmpOp, Constraint, Ic, IcAtom, IcSet, Nnc, Term, TermSpec};
use cqa_relational::{DatabaseAtom, InstanceDelta, RelId, Schema, Symbol, Tuple, Value};
use std::collections::HashMap;

/// Sanity cap on any single length-prefixed section (strings, frames,
/// tuple arities). A corrupted length field must never drive a
/// multi-gigabyte allocation; real payloads are orders of magnitude
/// smaller.
pub const MAX_SECTION_LEN: u32 = 1 << 30;

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320)
// ---------------------------------------------------------------------

/// The 256-entry CRC32 lookup table, computed at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------
// Primitive writer / reader
// ---------------------------------------------------------------------

/// An append-only byte buffer with fixed-width little-endian primitives.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh, empty buffer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` iff nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i64`, little-endian.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append raw bytes (no length prefix).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// A checked cursor over encoded bytes. Every read is bounds-checked and
/// returns [`StorageError::Corrupt`] on over-run — decoding attacker- or
/// crash-mangled bytes must never panic.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Which artifact is being decoded, for error context.
    what: &'static str,
}

impl<'a> Reader<'a> {
    /// A cursor over `buf`; `what` names the artifact in error messages.
    pub fn new(buf: &'a [u8], what: &'static str) -> Self {
        Reader { buf, pos: 0, what }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` iff the cursor consumed every byte.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        if self.remaining() < n {
            return Err(StorageError::corrupt(
                self.what,
                format!(
                    "section truncated: need {n} bytes at offset {}, have {}",
                    self.pos,
                    self.remaining()
                ),
            ));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, StorageError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, StorageError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Read a little-endian `u32` used as a count/length, enforcing the
    /// [`MAX_SECTION_LEN`] sanity cap.
    pub fn len_u32(&mut self) -> Result<u32, StorageError> {
        let v = self.u32()?;
        if v > MAX_SECTION_LEN {
            return Err(StorageError::corrupt(
                self.what,
                format!("implausible length {v} (cap {MAX_SECTION_LEN})"),
            ));
        }
        Ok(v)
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, StorageError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, StorageError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, StorageError> {
        let len = self.len_u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map_err(|e| StorageError::corrupt(self.what, format!("invalid UTF-8: {e}")))
    }
}

// ---------------------------------------------------------------------
// Symbol table: file-local dense ids ↔ live process symbols
// ---------------------------------------------------------------------

/// Writer-side symbol table: assigns *file-local* dense ids in first-use
/// order. Encode values against the sink first, then emit the table with
/// [`SymbolSink::encode_table`] — the table must precede the values in
/// the final layout, so sections are assembled table-first from two
/// buffers.
#[derive(Debug, Default)]
pub struct SymbolSink {
    ids: HashMap<Symbol, u32>,
    order: Vec<Symbol>,
}

impl SymbolSink {
    /// A fresh, empty table.
    pub fn new() -> Self {
        SymbolSink::default()
    }

    /// The file-local id of `sym`, assigning the next dense id on first
    /// use.
    pub fn local_id(&mut self, sym: Symbol) -> u32 {
        *self.ids.entry(sym).or_insert_with(|| {
            let id = self.order.len() as u32;
            self.order.push(sym);
            id
        })
    }

    /// Emit the table: count, then each symbol's string in local-id
    /// order (the id is implicit in the position).
    pub fn encode_table(&self, w: &mut Writer) {
        w.u32(self.order.len() as u32);
        for sym in &self.order {
            w.str(sym.as_str());
        }
    }

    /// Encode a value, interning strings into this table.
    pub fn value(&mut self, w: &mut Writer, v: &Value) {
        match v {
            Value::Null => w.u8(0),
            Value::Int(i) => {
                w.u8(1);
                w.i64(*i);
            }
            Value::Sym(s) => {
                let id = self.local_id(*s);
                w.u8(2);
                w.u32(id);
            }
        }
    }

    /// Encode a tuple: arity, then values.
    pub fn tuple(&mut self, w: &mut Writer, t: &Tuple) {
        w.u32(t.arity() as u32);
        for v in t.values() {
            self.value(w, v);
        }
    }

    /// Encode a database atom: relation index, then tuple.
    pub fn atom(&mut self, w: &mut Writer, a: &DatabaseAtom) {
        w.u32(a.rel.0);
        self.tuple(w, &a.tuple);
    }
}

/// Reader-side symbol table: re-interns every persisted string through
/// the *current* process's interner, mapping file-local ids to live
/// [`Symbol`]s. This is the remap step that makes persisted `Sym` values
/// meaningful across processes.
#[derive(Debug)]
pub struct SymbolSource {
    symbols: Vec<Symbol>,
}

impl SymbolSource {
    /// Decode a table emitted by [`SymbolSink::encode_table`].
    pub fn decode_table(r: &mut Reader<'_>) -> Result<Self, StorageError> {
        let count = r.len_u32()? as usize;
        let mut symbols = Vec::with_capacity(count);
        for _ in 0..count {
            symbols.push(Symbol::intern(r.str()?));
        }
        Ok(SymbolSource { symbols })
    }

    /// The live symbol for a file-local id.
    pub fn resolve(&self, local: u32, what: &'static str) -> Result<Symbol, StorageError> {
        self.symbols.get(local as usize).copied().ok_or_else(|| {
            StorageError::corrupt(
                what,
                format!(
                    "symbol id {local} out of range (table has {})",
                    self.symbols.len()
                ),
            )
        })
    }

    /// Decode a value.
    pub fn value(&self, r: &mut Reader<'_>) -> Result<Value, StorageError> {
        match r.u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Int(r.i64()?)),
            2 => {
                let local = r.u32()?;
                Ok(Value::Sym(self.resolve(local, "value")?))
            }
            tag => Err(StorageError::corrupt(
                "value",
                format!("unknown value tag {tag}"),
            )),
        }
    }

    /// Decode a tuple.
    pub fn tuple(&self, r: &mut Reader<'_>) -> Result<Tuple, StorageError> {
        let arity = r.len_u32()? as usize;
        let mut values = Vec::with_capacity(arity.min(64));
        for _ in 0..arity {
            values.push(self.value(r)?);
        }
        Ok(Tuple::new(values))
    }

    /// Decode a database atom.
    pub fn atom(&self, r: &mut Reader<'_>) -> Result<DatabaseAtom, StorageError> {
        let rel = RelId(r.u32()?);
        let tuple = self.tuple(r)?;
        Ok(DatabaseAtom::new(rel, tuple))
    }
}

// ---------------------------------------------------------------------
// InstanceDelta payloads (the WAL frame body)
// ---------------------------------------------------------------------

/// Encode an [`InstanceDelta`] as a self-describing payload: its own
/// symbol table, then removed atoms, then added atoms. Self-describing
/// frames are what let a *new process* replay a WAL written by a dead
/// one.
pub fn encode_delta(delta: &InstanceDelta) -> Vec<u8> {
    let mut sink = SymbolSink::new();
    let mut body = Writer::new();
    body.u32(delta.removed.len() as u32);
    for a in &delta.removed {
        sink.atom(&mut body, a);
    }
    body.u32(delta.added.len() as u32);
    for a in &delta.added {
        sink.atom(&mut body, a);
    }
    let mut out = Writer::new();
    sink.encode_table(&mut out);
    out.raw(&body.into_bytes());
    out.into_bytes()
}

/// Decode a payload produced by [`encode_delta`], remapping symbols into
/// the current process.
pub fn decode_delta(bytes: &[u8]) -> Result<InstanceDelta, StorageError> {
    let mut r = Reader::new(bytes, "wal frame payload");
    let source = SymbolSource::decode_table(&mut r)?;
    let mut delta = InstanceDelta::default();
    let removed = r.len_u32()?;
    for _ in 0..removed {
        delta.removed.insert(source.atom(&mut r)?);
    }
    let added = r.len_u32()?;
    for _ in 0..added {
        delta.added.insert(source.atom(&mut r)?);
    }
    if !r.is_exhausted() {
        return Err(StorageError::corrupt(
            "wal frame payload",
            format!("{} trailing bytes after delta", r.remaining()),
        ));
    }
    Ok(delta)
}

// ---------------------------------------------------------------------
// Constraint payloads (structural encoding, shared by the manifest and
// constraint WAL frames)
// ---------------------------------------------------------------------

fn encode_term(sink: &mut SymbolSink, w: &mut Writer, term: &Term) {
    match term {
        Term::Var(v) => {
            w.u8(0);
            w.u32(v.0);
        }
        Term::Const(val) => {
            w.u8(1);
            sink.value(w, val);
        }
    }
}

fn encode_ic_atoms(sink: &mut SymbolSink, w: &mut Writer, atoms: &[IcAtom]) {
    w.u32(atoms.len() as u32);
    for atom in atoms {
        w.u32(atom.rel.0);
        w.u32(atom.terms.len() as u32);
        for t in &atom.terms {
            encode_term(sink, w, t);
        }
    }
}

fn cmp_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Neq => 1,
        CmpOp::Lt => 2,
        CmpOp::Leq => 3,
        CmpOp::Gt => 4,
        CmpOp::Geq => 5,
    }
}

/// Encode one constraint structurally (atoms, terms, builtin
/// comparisons, variable names), interning constants through `sink`.
pub fn encode_constraint(sink: &mut SymbolSink, w: &mut Writer, con: &Constraint) {
    match con {
        Constraint::Tgd(ic) => {
            w.u8(0);
            w.str(ic.name());
            w.u32(ic.var_count() as u32);
            for v in 0..ic.var_count() {
                w.str(ic.var_name(cqa_constraints::VarId(v as u32)));
            }
            encode_ic_atoms(sink, w, ic.body());
            encode_ic_atoms(sink, w, ic.head());
            w.u32(ic.builtins().len() as u32);
            for b in ic.builtins() {
                w.u8(cmp_tag(b.op));
                encode_term(sink, w, &b.lhs);
                encode_term(sink, w, &b.rhs);
            }
        }
        Constraint::NotNull(nnc) => {
            w.u8(1);
            w.str(&nnc.name);
            w.u32(nnc.rel.0);
            w.u32(nnc.position as u32);
        }
    }
}

/// Encode a whole constraint set: count, then each constraint.
pub fn encode_constraints(sink: &mut SymbolSink, w: &mut Writer, ics: &IcSet) {
    w.u32(ics.len() as u32);
    for con in ics.constraints() {
        encode_constraint(sink, w, con);
    }
}

fn decode_term(
    source: &SymbolSource,
    r: &mut Reader<'_>,
    var_names: &[String],
) -> Result<TermSpec, StorageError> {
    match r.u8()? {
        0 => {
            let idx = r.u32()? as usize;
            let name = var_names.get(idx).ok_or_else(|| {
                StorageError::corrupt(
                    "persisted constraint",
                    format!("variable id {idx} out of range ({} names)", var_names.len()),
                )
            })?;
            Ok(TermSpec::Var(name.clone()))
        }
        1 => Ok(TermSpec::Const(source.value(r)?)),
        tag => Err(StorageError::corrupt(
            "persisted constraint",
            format!("unknown term tag {tag}"),
        )),
    }
}

fn decode_ic_atoms(
    source: &SymbolSource,
    r: &mut Reader<'_>,
    var_names: &[String],
    schema: &Schema,
) -> Result<Vec<(String, Vec<TermSpec>)>, StorageError> {
    let count = r.len_u32()? as usize;
    let mut atoms = Vec::with_capacity(count);
    for _ in 0..count {
        let rel = RelId(r.u32()?);
        if rel.index() >= schema.len() {
            return Err(StorageError::corrupt(
                "persisted constraint",
                format!("relation id {rel} out of range"),
            ));
        }
        let name = schema.relation(rel).name().to_string();
        let arity = r.len_u32()? as usize;
        let mut terms = Vec::with_capacity(arity);
        for _ in 0..arity {
            terms.push(decode_term(source, r, var_names)?);
        }
        atoms.push((name, terms));
    }
    Ok(atoms)
}

fn decode_cmp(tag: u8) -> Result<CmpOp, StorageError> {
    Ok(match tag {
        0 => CmpOp::Eq,
        1 => CmpOp::Neq,
        2 => CmpOp::Lt,
        3 => CmpOp::Leq,
        4 => CmpOp::Gt,
        5 => CmpOp::Geq,
        other => {
            return Err(StorageError::corrupt(
                "persisted constraint",
                format!("unknown comparison tag {other}"),
            ))
        }
    })
}

/// Decode one constraint written by [`encode_constraint`], rebuilding it
/// through [`Ic::builder`] / [`Nnc::new`] so the result is `Eq`-equal to
/// the saved value (the builder replays atoms and terms in their
/// original order, re-deriving the same first-occurrence variable ids
/// and all derived metadata).
pub fn decode_constraint(
    source: &SymbolSource,
    r: &mut Reader<'_>,
    schema: &Schema,
) -> Result<Constraint, StorageError> {
    match r.u8()? {
        0 => {
            let name = r.str()?.to_string();
            let var_count = r.len_u32()? as usize;
            let mut var_names = Vec::with_capacity(var_count);
            for _ in 0..var_count {
                var_names.push(r.str()?.to_string());
            }
            let body = decode_ic_atoms(source, r, &var_names, schema)?;
            let head = decode_ic_atoms(source, r, &var_names, schema)?;
            let builtin_count = r.len_u32()? as usize;
            let mut builtins = Vec::with_capacity(builtin_count);
            for _ in 0..builtin_count {
                let op = decode_cmp(r.u8()?)?;
                let lhs = decode_term(source, r, &var_names)?;
                let rhs = decode_term(source, r, &var_names)?;
                builtins.push((op, lhs, rhs));
            }
            let mut builder = Ic::builder(schema, name);
            for (rel, terms) in body {
                builder = builder.body_atom(&rel, terms);
            }
            for (rel, terms) in head {
                builder = builder.head_atom(&rel, terms);
            }
            for (op, lhs, rhs) in builtins {
                builder = builder.builtin(lhs, op, rhs);
            }
            Ok(builder.finish()?.into())
        }
        1 => {
            let name = r.str()?.to_string();
            let rel = RelId(r.u32()?);
            if rel.index() >= schema.len() {
                return Err(StorageError::corrupt(
                    "persisted constraint",
                    format!("relation id {rel} out of range"),
                ));
            }
            let position = r.u32()? as usize;
            let rel_name = schema.relation(rel).name().to_string();
            Ok(Nnc::new(schema, name, &rel_name, position)?.into())
        }
        tag => Err(StorageError::corrupt(
            "persisted constraint",
            format!("unknown constraint tag {tag}"),
        )),
    }
}

/// Decode a constraint set written by [`encode_constraints`].
pub fn decode_constraints(
    source: &SymbolSource,
    r: &mut Reader<'_>,
    schema: &Schema,
) -> Result<IcSet, StorageError> {
    let count = r.len_u32()? as usize;
    let mut ics = IcSet::default();
    for _ in 0..count {
        ics.push(decode_constraint(source, r, schema)?);
    }
    Ok(ics)
}

// ---------------------------------------------------------------------
// Tagged WAL operations (the frame payload, format v2)
// ---------------------------------------------------------------------

/// Payload tag of an instance-delta frame.
const OP_DELTA: u8 = 0;
/// Payload tag of an added-constraint frame.
const OP_CONSTRAINT: u8 = 1;

/// One decoded WAL operation: what a recovered frame asks the caller to
/// replay.
#[derive(Debug)]
pub enum WalOp {
    /// Apply an instance delta.
    Delta(InstanceDelta),
    /// Add a constraint to the set. Constraint changes ride the WAL as
    /// O(delta) appends — recovery replays them in sequence order with
    /// the deltas — instead of forcing a full snapshot rewrite.
    Constraint(Constraint),
}

/// Encode a delta as a tagged WAL frame payload.
pub fn encode_delta_op(delta: &InstanceDelta) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.push(OP_DELTA);
    out.extend_from_slice(&encode_delta(delta));
    out
}

/// Encode an added constraint as a tagged WAL frame payload. The
/// payload is self-describing (it carries its own symbol table for any
/// constant values), like every other frame.
pub fn encode_constraint_op(con: &Constraint) -> Vec<u8> {
    let mut sink = SymbolSink::new();
    let mut staged = Writer::new();
    encode_constraint(&mut sink, &mut staged, con);
    let mut w = Writer::new();
    w.u8(OP_CONSTRAINT);
    sink.encode_table(&mut w);
    w.raw(&staged.into_bytes());
    w.into_bytes()
}

/// Decode a tagged frame payload produced by [`encode_delta_op`] or
/// [`encode_constraint_op`]. Constraint frames need the schema (from
/// the snapshot manifest) to re-validate relation ids.
pub fn decode_op(bytes: &[u8], schema: &Schema) -> Result<WalOp, StorageError> {
    let mut r = Reader::new(bytes, "wal frame payload");
    match r.u8()? {
        OP_DELTA => Ok(WalOp::Delta(decode_delta(&bytes[1..])?)),
        OP_CONSTRAINT => {
            let source = SymbolSource::decode_table(&mut r)?;
            let con = decode_constraint(&source, &mut r, schema)?;
            if !r.is_exhausted() {
                return Err(StorageError::corrupt(
                    "wal frame payload",
                    format!("{} trailing bytes after constraint", r.remaining()),
                ));
            }
            Ok(WalOp::Constraint(con))
        }
        tag => Err(StorageError::corrupt(
            "wal frame payload",
            format!("unknown operation tag {tag}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_relational::{i, null, s};
    use std::collections::BTreeSet;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn primitives_roundtrip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.i64(-42);
        w.str("héllo");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "test");
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.str().unwrap(), "héllo");
        assert!(r.is_exhausted());
    }

    #[test]
    fn reader_overrun_is_an_error_not_a_panic() {
        let mut r = Reader::new(&[1, 2], "test");
        assert!(r.u32().is_err());
        let mut r = Reader::new(&[255, 255, 255, 255], "test");
        assert!(r.len_u32().is_err(), "implausible length rejected");
    }

    #[test]
    fn delta_payload_roundtrips() {
        let mut delta = InstanceDelta::default();
        delta.added.insert(DatabaseAtom::new(
            RelId(0),
            Tuple::new(vec![s("alice"), null(), i(3)]),
        ));
        delta
            .added
            .insert(DatabaseAtom::new(RelId(1), Tuple::new(vec![s("bob")])));
        delta.removed.insert(DatabaseAtom::new(
            RelId(0),
            Tuple::new(vec![s("alice"), s("bob"), i(-9)]),
        ));
        let bytes = encode_delta(&delta);
        let back = decode_delta(&bytes).unwrap();
        assert_eq!(back, delta);
    }

    #[test]
    fn empty_delta_roundtrips() {
        let delta = InstanceDelta::default();
        let back = decode_delta(&encode_delta(&delta)).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn corrupt_payload_is_detected() {
        let mut delta = InstanceDelta::default();
        delta
            .added
            .insert(DatabaseAtom::new(RelId(0), Tuple::new(vec![s("x")])));
        let mut bytes = encode_delta(&delta);
        // Truncation.
        bytes.pop();
        assert!(decode_delta(&bytes).is_err());
        // Trailing garbage.
        let mut bytes = encode_delta(&delta);
        bytes.push(0);
        assert!(decode_delta(&bytes).is_err());
    }

    #[test]
    fn symbol_sink_assigns_dense_first_use_ids() {
        let mut sink = SymbolSink::new();
        let a = Symbol::intern("codec-sink-a");
        let b = Symbol::intern("codec-sink-b");
        assert_eq!(sink.local_id(b), 0); // first use wins id 0
        assert_eq!(sink.local_id(a), 1);
        assert_eq!(sink.local_id(b), 0); // stable on re-use
        let mut w = Writer::new();
        sink.encode_table(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "test");
        let source = SymbolSource::decode_table(&mut r).unwrap();
        assert_eq!(source.resolve(0, "test").unwrap(), b);
        assert_eq!(source.resolve(1, "test").unwrap(), a);
        assert!(source.resolve(2, "test").is_err());
    }

    #[test]
    fn tagged_ops_roundtrip() {
        use cqa_constraints::{c, v};
        let schema = Schema::builder()
            .relation("r", ["x", "y"])
            .relation("s", ["u", "v"])
            .finish()
            .unwrap()
            .into_shared();
        // Constraint ops: a Tgd with a constant (exercises the symbol
        // table) and an Nnc, both Eq-equal after the roundtrip.
        let tgd: Constraint = Ic::builder(&schema, "key_r")
            .body_atom("r", [v("x"), v("y")])
            .body_atom("r", [v("x"), v("z")])
            .builtin(v("y"), CmpOp::Eq, v("z"))
            .builtin(v("x"), CmpOp::Neq, c(s("op-roundtrip-const")))
            .finish()
            .unwrap()
            .into();
        let nnc: Constraint = Nnc::new(&schema, "nn_s_u", "s", 0).unwrap().into();
        for con in [tgd, nnc] {
            let bytes = encode_constraint_op(&con);
            match decode_op(&bytes, &schema).unwrap() {
                WalOp::Constraint(back) => assert_eq!(back, con),
                other => panic!("expected a constraint op, got {other:?}"),
            }
        }
        // Delta ops carry the untagged delta payload behind tag 0.
        let mut delta = InstanceDelta::default();
        delta.added.insert(DatabaseAtom::new(
            RelId(0),
            Tuple::new(vec![s("x"), null()]),
        ));
        match decode_op(&encode_delta_op(&delta), &schema).unwrap() {
            WalOp::Delta(back) => assert_eq!(back, delta),
            other => panic!("expected a delta op, got {other:?}"),
        }
        // Unknown tags and trailing bytes are corruption, not panics.
        assert!(decode_op(&[9], &schema).is_err());
        let mut trailing = encode_constraint_op(&Nnc::new(&schema, "t", "s", 1).unwrap().into());
        trailing.push(0);
        assert!(decode_op(&trailing, &schema).is_err());
    }

    #[test]
    fn delta_sets_stay_ordered_after_roundtrip() {
        // BTreeSet iteration order survives encode/decode (order is
        // textual, never id-based).
        let mut delta = InstanceDelta::default();
        for name in ["zeta", "alpha", "mid"] {
            delta
                .added
                .insert(DatabaseAtom::new(RelId(0), Tuple::new(vec![s(name)])));
        }
        let back = decode_delta(&encode_delta(&delta)).unwrap();
        let order: Vec<_> = back
            .added
            .iter()
            .map(|a| a.tuple.get(0).as_str().unwrap())
            .collect();
        assert_eq!(order, vec!["alpha", "mid", "zeta"]);
        let expected: BTreeSet<_> = delta.added.iter().cloned().collect();
        assert_eq!(back.added, expected);
    }
}
