//! The write-ahead log: a checksummed, length-prefixed append-only file
//! of serialized operation frames (instance deltas and constraint
//! additions — see [`codec::encode_delta_op`](crate::codec) and
//! friends).
//!
//! ## On-disk layout
//!
//! ```text
//! [ magic "CQAWAL02" : 8 bytes ]
//! [ frame ]*
//!
//! frame := [ payload_len : u32 LE ]
//!          [ seq         : u64 LE ]   monotonic, never reused
//!          [ crc32       : u32 LE ]   over seq_LE || payload
//!          [ payload     : payload_len bytes ]  (a tagged codec op)
//! ```
//!
//! The CRC covers the sequence number *and* the payload, so a frame
//! whose header survived a crash but whose body did not — or a frame
//! spliced from another log — fails verification as a unit.
//!
//! ## Torn-tail semantics
//!
//! A crash mid-append leaves a short or corrupt final frame. That is the
//! *expected* steady state of a WAL, not an error: [`Wal::open`] scans
//! frames until the first one that is short, fails its checksum, or
//! regresses the sequence number, **truncates the file at the last good
//! frame boundary**, and reports the dropped bytes. Everything before
//! the tear is intact by CRC; everything after it was never
//! acknowledged. Corruption *before* the tail is indistinguishable from
//! a tear and handled the same way — the log simply ends earlier, and
//! the caller's [`RecoveryReport`](crate::RecoveryReport) says so.
//!
//! A file *shorter than the magic* is the [`Wal::create`] crash window
//! (the store's snapshot is durably written first, so nothing is lost)
//! and is rebuilt as an empty log; a full-length but *wrong* magic is a
//! foreign file and a hard [`StorageError::Corrupt`].

use crate::codec::{crc32, MAX_SECTION_LEN};
use crate::error::StorageError;
use crate::vfs::{RealVfs, Vfs, VfsFile};
use std::io::SeekFrom;
use std::path::Path;

/// File magic: identifies a WAL and its format version. Version 02
/// carries *tagged* operation payloads (delta or constraint) instead of
/// bare delta payloads.
pub const WAL_MAGIC: &[u8; 8] = b"CQAWAL02";

/// Per-frame header size: payload_len (4) + seq (8) + crc (4).
const FRAME_HEADER: usize = 16;

/// When the store asks the OS to flush appended frames to stable
/// storage.
///
/// The knob trades acknowledged-write durability for append latency:
/// `Always` survives power loss at every acknowledged write; `EveryN`
/// bounds the loss window to the last n-1 acknowledged frames;
/// `Never` leaves flushing to the OS page cache (process crashes — the
/// crash-harness scenario — still lose nothing, because the page cache
/// survives the process).
///
/// The policy is interpreted by [`DurableStore`](crate::DurableStore),
/// not by [`Wal`] itself: `Wal::append` only writes, and the store
/// decides when to call [`Wal::sync`] — that separation is what lets a
/// group-commit leader cover many appended frames with one fsync.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every appended frame (coalesced into one fsync per
    /// batch when group commit is enabled — the acknowledgment contract
    /// is identical either way).
    Always,
    /// `fsync` after every n-th appended frame (n ≥ 1; 1 behaves like
    /// `Always`).
    EveryN(u32),
    /// Never `fsync` from the store; the OS decides.
    Never,
}

/// One recovered frame: its sequence number and decoded-payload bytes.
#[derive(Debug)]
pub struct Frame {
    /// The frame's monotonic sequence number.
    pub seq: u64,
    /// The frame payload (a `codec::encode_delta` body).
    pub payload: Vec<u8>,
}

/// What [`Wal::open`] found on disk.
#[derive(Debug, Default)]
pub struct WalScan {
    /// Every intact frame, in file (= sequence) order.
    pub frames: Vec<Frame>,
    /// Bytes dropped from the tail (0 for a clean shutdown).
    pub bytes_truncated: u64,
}

/// An open, append-position log file.
#[derive(Debug)]
pub struct Wal {
    file: Box<dyn VfsFile>,
    next_seq: u64,
}

impl Wal {
    /// Create a fresh, empty WAL at `path` (truncating any existing
    /// file), write the magic, and sync it — on the real filesystem.
    pub fn create(path: &Path) -> Result<Wal, StorageError> {
        Wal::create_with(&RealVfs, path)
    }

    /// [`Wal::create`] against an explicit [`Vfs`].
    pub fn create_with(vfs: &dyn Vfs, path: &Path) -> Result<Wal, StorageError> {
        let mut file = vfs.create_truncate(path)?;
        file.write_all(WAL_MAGIC)?;
        file.sync_all()?;
        Ok(Wal { file, next_seq: 1 })
    }

    /// Open an existing WAL on the real filesystem: scan every frame,
    /// truncate the torn tail (if any), and leave the file positioned
    /// for appending. Returns the scan alongside the ready-to-append
    /// handle.
    ///
    /// Never panics on mangled bytes: a short frame, a failed checksum,
    /// an implausible length, or a sequence regression all end the scan
    /// at the last good frame boundary.
    pub fn open(path: &Path) -> Result<(Wal, WalScan), StorageError> {
        Wal::open_with(&RealVfs, path)
    }

    /// [`Wal::open`] against an explicit [`Vfs`].
    pub fn open_with(vfs: &dyn Vfs, path: &Path) -> Result<(Wal, WalScan), StorageError> {
        let mut file = vfs.open_rw(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        if bytes.len() < WAL_MAGIC.len() {
            // Shorter than the magic: the crash window in [`Wal::create`]
            // between file creation and the magic's fsync. The store
            // writes its snapshot *before* creating the WAL, so nothing
            // durable can live here — rebuild an empty log and report
            // the dropped bytes as a (zero-frame) torn tail.
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(WAL_MAGIC)?;
            file.sync_all()?;
            return Ok((
                Wal { file, next_seq: 1 },
                WalScan {
                    frames: Vec::new(),
                    bytes_truncated: bytes.len() as u64,
                },
            ));
        }
        if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Err(StorageError::corrupt(
                "wal",
                "missing or wrong magic (not a WAL file)",
            ));
        }

        let mut frames = Vec::new();
        let mut good_end = WAL_MAGIC.len();
        let mut pos = WAL_MAGIC.len();
        let mut last_seq = 0u64;
        loop {
            if bytes.len() - pos < FRAME_HEADER {
                break; // short header: torn tail
            }
            let payload_len =
                u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4")) as usize;
            if payload_len as u32 > MAX_SECTION_LEN {
                break; // implausible length: corrupt header
            }
            let seq = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8"));
            let crc = u32::from_le_bytes(bytes[pos + 12..pos + 16].try_into().expect("4"));
            let body_start = pos + FRAME_HEADER;
            if bytes.len() - body_start < payload_len {
                break; // short body: torn tail
            }
            let payload = &bytes[body_start..body_start + payload_len];
            let mut checked = Vec::with_capacity(8 + payload_len);
            checked.extend_from_slice(&seq.to_le_bytes());
            checked.extend_from_slice(payload);
            if crc32(&checked) != crc {
                break; // bit rot or torn write inside the frame
            }
            if seq <= last_seq {
                break; // sequence regression: frame from a stale epoch
            }
            last_seq = seq;
            frames.push(Frame {
                seq,
                payload: payload.to_vec(),
            });
            pos = body_start + payload_len;
            good_end = pos;
        }

        let bytes_truncated = (bytes.len() - good_end) as u64;
        if bytes_truncated > 0 {
            file.set_len(good_end as u64)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(good_end as u64))?;

        let next_seq = frames.last().map(|f| f.seq + 1).unwrap_or(1);
        Ok((
            Wal { file, next_seq },
            WalScan {
                frames,
                bytes_truncated,
            },
        ))
    }

    /// The sequence number the *next* append will be stamped with.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Bytes currently in the log (including the magic).
    pub fn len_bytes(&self) -> Result<u64, StorageError> {
        Ok(self.file.len()?)
    }

    /// Append one payload as a frame; returns its sequence number. The
    /// frame is *written, not synced* — durability is the caller's move
    /// ([`Wal::sync`]), which is what lets the store's group-commit
    /// leader cover a whole batch of appended frames with one fsync.
    /// Callers must not acknowledge the write (mutate in-memory state
    /// and return to their caller) until the covering sync has
    /// succeeded, when their fsync policy requires one.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, StorageError> {
        let seq = self.next_seq;
        let mut checked = Vec::with_capacity(8 + payload.len());
        checked.extend_from_slice(&seq.to_le_bytes());
        checked.extend_from_slice(payload);
        let crc = crc32(&checked);

        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&seq.to_le_bytes());
        frame.extend_from_slice(&crc.to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;

        self.next_seq += 1;
        Ok(seq)
    }

    /// Flush everything appended so far to stable storage.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.file.sync_data()?;
        Ok(())
    }

    /// Reset the log to empty after a snapshot compaction, carrying the
    /// sequence counter forward (sequence numbers are never reused, so a
    /// frame surviving from a pre-compaction epoch is detectable as a
    /// regression).
    pub fn reset(&mut self) -> Result<(), StorageError> {
        // Truncate down *to* the magic instead of rewriting it: the
        // header never leaves the file, so there is no instant at which
        // a crash can leave a header-less log. A kill before the
        // `set_len` lands keeps the old epoch (its frames are ≤ the
        // just-written snapshot's horizon and skipped on recovery); a
        // kill after it leaves a valid empty log.
        self.file.set_len(WAL_MAGIC.len() as u64)?;
        self.file.seek(SeekFrom::Start(WAL_MAGIC.len() as u64))?;
        self.file.sync_all()?;
        Ok(())
    }

    /// Raise the next sequence number to at least `seq`. The store calls
    /// this with its snapshot horizon + 1 after recovery, so that even a
    /// WAL rebuilt from a crash window (or lost entirely) can never
    /// stamp a fresh frame with a sequence number the snapshot already
    /// covers — such a frame would be silently skipped on the *next*
    /// recovery.
    pub fn ensure_seq_at_least(&mut self, seq: u64) {
        self.next_seq = self.next_seq.max(seq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::{self, OpenOptions};
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cqa-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_then_open_roundtrips() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("wal");
        let mut wal = Wal::create(&path).unwrap();
        assert_eq!(wal.append(b"first").unwrap(), 1);
        assert_eq!(wal.append(b"second").unwrap(), 2);
        drop(wal);

        let (wal, scan) = Wal::open(&path).unwrap();
        assert_eq!(scan.bytes_truncated, 0);
        assert_eq!(scan.frames.len(), 2);
        assert_eq!(scan.frames[0].payload, b"first");
        assert_eq!(scan.frames[1].seq, 2);
        assert_eq!(wal.next_seq(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = tmpdir("torn");
        let path = dir.join("wal");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(b"keep-me").unwrap();
        wal.append(b"will-be-torn").unwrap();
        drop(wal);

        // Tear the last frame: chop 3 bytes off the file.
        let len = fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);

        let (mut wal, scan) = Wal::open(&path).unwrap();
        assert_eq!(scan.frames.len(), 1);
        assert_eq!(scan.frames[0].payload, b"keep-me");
        assert!(scan.bytes_truncated > 0);
        // The file is clean again: appends resume at seq 2 and reopen
        // sees both frames.
        assert_eq!(wal.append(b"after-recovery").unwrap(), 2);
        drop(wal);
        let (_, scan) = Wal::open(&path).unwrap();
        assert_eq!(scan.frames.len(), 2);
        assert_eq!(scan.bytes_truncated, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_fails_checksum_and_drops_the_tail() {
        let dir = tmpdir("flip");
        let path = dir.join("wal");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(b"good-frame").unwrap();
        wal.append(b"flipped-frame").unwrap();
        drop(wal);

        // Flip one bit inside the second frame's payload.
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 2] ^= 0x40;
        fs::write(&path, &bytes).unwrap();

        let (_, scan) = Wal::open(&path).unwrap();
        assert_eq!(scan.frames.len(), 1, "flipped frame dropped by CRC");
        assert_eq!(scan.frames[0].payload, b"good-frame");
        assert!(scan.bytes_truncated > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shorter_than_magic_is_the_create_window_not_corruption() {
        // 0-byte and partial-magic files are what a kill inside
        // `Wal::create` (before the magic fsync) leaves behind; both
        // must open as an empty log that accepts appends.
        let dir = tmpdir("shortfile");
        for (k, stub) in [&b""[..], &b"CQA"[..], &b"CQAWAL0"[..]].iter().enumerate() {
            let path = dir.join(format!("wal{k}"));
            fs::write(&path, stub).unwrap();
            let (mut wal, scan) = Wal::open(&path).unwrap();
            assert!(scan.frames.is_empty());
            assert_eq!(scan.bytes_truncated, stub.len() as u64);
            assert_eq!(wal.append(b"alive").unwrap(), 1);
            drop(wal);
            let (_, scan) = Wal::open(&path).unwrap();
            assert_eq!(scan.frames.len(), 1);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ensure_seq_floor_only_raises() {
        let dir = tmpdir("seqfloor");
        let path = dir.join("wal");
        let mut wal = Wal::create(&path).unwrap();
        wal.ensure_seq_at_least(7);
        assert_eq!(wal.next_seq(), 7);
        wal.ensure_seq_at_least(3);
        assert_eq!(wal.next_seq(), 7, "the floor never lowers");
        assert_eq!(wal.append(b"x").unwrap(), 7);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_magic_is_corrupt_not_a_panic() {
        let dir = tmpdir("magic");
        let path = dir.join("wal");
        fs::write(&path, b"NOTAWAL!rest").unwrap();
        let err = Wal::open(&path).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reset_carries_sequence_numbers_forward() {
        let dir = tmpdir("reset");
        let path = dir.join("wal");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(b"a").unwrap();
        wal.append(b"b").unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.append(b"c").unwrap(), 3, "seq never reused");
        drop(wal);
        let (_, scan) = Wal::open(&path).unwrap();
        assert_eq!(scan.frames.len(), 1);
        assert_eq!(scan.frames[0].seq, 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_payloads_and_large_frames_roundtrip() {
        let dir = tmpdir("sizes");
        let path = dir.join("wal");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(b"").unwrap();
        let big = vec![0xABu8; 100_000];
        wal.append(&big).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_, scan) = Wal::open(&path).unwrap();
        assert_eq!(scan.frames.len(), 2);
        assert!(scan.frames[0].payload.is_empty());
        assert_eq!(scan.frames[1].payload, big);
        fs::remove_dir_all(&dir).unwrap();
    }
}
