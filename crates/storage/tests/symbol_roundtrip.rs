//! Property tests for symbol-table round-tripping: persisted symbol ids
//! are file-local, so a load must *remap* them through the live
//! process's interner — and the remap must be invisible. Every pinned
//! enumeration order (`BTreeSet` iteration, `Value` ordering, instance
//! `atoms()` order) has to be byte-identical after a save → load cycle,
//! because repairs and consistent answers are compared as ordered sets
//! downstream.
//!
//! A fresh process is simulated two ways:
//!
//! 1. **Never-interned strings.** Each iteration mints symbol strings
//!    unique to this test run (seed + counter + process id), so the
//!    load path's `Symbol::intern` genuinely assigns fresh ids — in an
//!    order decided by the *file* (first-use order of the writer), not
//!    by lexicographic order.
//! 2. **Scrambled table order.** The writer assigns file-local ids in
//!    first-use order of a shuffled atom stream, so file-local id order,
//!    intern order, and lexicographic order all disagree — any decode
//!    path that leaned on id order instead of resolved text would break
//!    the pinned orders immediately.

use cqa_constraints::{v, CmpOp, Ic, IcSet, Nnc};
use cqa_relational::testing::XorShift;
use cqa_relational::{i, null, DatabaseAtom, Instance, InstanceDelta, RelId, Schema, Tuple, Value};
use cqa_storage::codec::{decode_delta, encode_delta};
use cqa_storage::snapshot;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;

/// Fresh scratch directory for one snapshot round-trip.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cqa-symround-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Strings never interned before this call (process-unique + run-unique),
/// in a scrambled generation order so lexicographic order ≠ intern order.
fn fresh_symbols(rng: &mut XorShift, n: usize, tag: &str) -> Vec<String> {
    let run = rng.next_u64();
    let mut out: Vec<String> = (0..n)
        .map(|k| format!("sym-{tag}-{}-{run:x}-{k}", std::process::id()))
        .collect();
    // Fisher–Yates so generation order (and thus intern order) is not
    // already sorted.
    for idx in (1..out.len()).rev() {
        out.swap(idx, rng.below(idx + 1));
    }
    out
}

fn random_schema(rng: &mut XorShift) -> Arc<Schema> {
    let mut b = Schema::builder();
    let rels = 1 + rng.below(3);
    for r in 0..rels {
        let arity = 1 + rng.below(3);
        b = b.relation_with_arity(format!("rel{r}"), arity);
    }
    b.finish().unwrap().into_shared()
}

fn random_value(rng: &mut XorShift, pool: &[String]) -> Value {
    match rng.below(4) {
        0 => null(),
        1 => i(rng.next_u64() as i64 % 1000),
        _ => cqa_relational::s(&pool[rng.below(pool.len())]),
    }
}

fn random_instance(rng: &mut XorShift, schema: &Arc<Schema>, pool: &[String]) -> Instance {
    let mut inst = Instance::empty(schema.clone());
    let rows = 5 + rng.below(30);
    for _ in 0..rows {
        let rel = RelId(rng.below(schema.len()) as u32);
        let arity = schema.relation(rel).arity();
        let tuple = Tuple::new((0..arity).map(|_| random_value(rng, pool)));
        inst.insert(rel, tuple).unwrap();
    }
    inst
}

/// The orders the workspace pins downstream, extracted for comparison.
fn pinned_orders(inst: &Instance) -> (Vec<DatabaseAtom>, Vec<Value>) {
    let atoms: Vec<DatabaseAtom> = inst.atoms().collect();
    let domain: Vec<Value> = inst.active_domain().into_iter().collect();
    (atoms, domain)
}

#[test]
fn snapshot_roundtrip_preserves_every_pinned_order() {
    for seed in 1..=25u64 {
        let mut rng = XorShift::new(seed);
        let schema = random_schema(&mut rng);
        let pool_size = 6 + rng.below(10);
        let pool = fresh_symbols(&mut rng, pool_size, &format!("snap{seed}"));
        let inst = random_instance(&mut rng, &schema, &pool);

        let dir = scratch(&format!("snap{seed}"));
        snapshot::write(&dir, &inst, &IcSet::default(), seed, None).expect("write");
        let snap = snapshot::read(&dir).expect("read");
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(snap.layout.last_seq, seed);
        let loaded = snap.instance;
        assert_eq!(loaded, inst, "seed {seed}: instance equality");

        let (atoms_a, dom_a) = pinned_orders(&inst);
        let (atoms_b, dom_b) = pinned_orders(&loaded);
        assert_eq!(atoms_a, atoms_b, "seed {seed}: atoms() enumeration order");
        assert_eq!(dom_a, dom_b, "seed {seed}: active-domain Value order");

        // BTreeSet iteration inside each relation is identical, tuple by
        // tuple, and sorted by the value ordering (Null < Int < Sym, Sym
        // by text) — id-independent by construction.
        for rel in schema.rel_ids() {
            let a: Vec<&Tuple> = inst.relation(rel).iter().collect();
            let b: Vec<&Tuple> = loaded.relation(rel).iter().collect();
            assert_eq!(a, b, "seed {seed}: relation {rel} iteration order");
            assert!(
                a.windows(2).all(|w| w[0] < w[1]),
                "seed {seed}: strict sortedness survives the remap"
            );
        }
    }
}

#[test]
fn wal_delta_roundtrip_preserves_set_order() {
    for seed in 100..=120u64 {
        let mut rng = XorShift::new(seed);
        let schema = random_schema(&mut rng);
        let pool = fresh_symbols(&mut rng, 8, &format!("wal{seed}"));
        let mut delta = InstanceDelta::default();
        for _ in 0..(1 + rng.below(12)) {
            let rel = RelId(rng.below(schema.len()) as u32);
            let arity = schema.relation(rel).arity();
            let tuple = Tuple::new((0..arity).map(|_| random_value(&mut rng, &pool)));
            let atom = DatabaseAtom::new(rel, tuple);
            if rng.chance(1, 2) {
                delta.added.insert(atom);
            } else {
                delta.removed.insert(atom);
            }
        }
        let back = decode_delta(&encode_delta(&delta)).expect("decode");
        assert_eq!(back, delta, "seed {seed}: delta equality");
        let a: Vec<&DatabaseAtom> = delta.added.iter().chain(delta.removed.iter()).collect();
        let b: Vec<&DatabaseAtom> = back.added.iter().chain(back.removed.iter()).collect();
        assert_eq!(a, b, "seed {seed}: BTreeSet iteration order");
    }
}

#[test]
fn constraints_roundtrip_with_fresh_symbol_constants() {
    // Constraint constants ride the same symbol table as tuples; a
    // rebuilt Ic must be Eq-equal including its Sym constants.
    let mut rng = XorShift::new(777);
    let schema = Schema::builder()
        .relation("r", ["x", "y"])
        .relation("q", ["a"])
        .finish()
        .unwrap()
        .into_shared();
    let pool = fresh_symbols(&mut rng, 4, "ics");
    let mut ics = IcSet::default();
    ics.push(
        Ic::builder(&schema, "fk")
            .body_atom("r", [v("x"), v("y")])
            .head_atom("q", [v("y")])
            .finish()
            .unwrap(),
    );
    ics.push(
        Ic::builder(&schema, "guard")
            .body_atom("r", [v("x"), v("y")])
            .builtin(
                v("x"),
                CmpOp::Neq,
                cqa_constraints::c(cqa_relational::s(&pool[0])),
            )
            .finish()
            .unwrap(),
    );
    ics.push(Nnc::new(&schema, "nn", "q", 0).unwrap());

    let mut inst = Instance::empty(schema);
    inst.insert_named(
        "r",
        [cqa_relational::s(&pool[1]), cqa_relational::s(&pool[2])],
    )
    .unwrap();

    let dir = scratch("ics");
    snapshot::write(&dir, &inst, &ics, 3, None).expect("write");
    let snap = snapshot::read(&dir).expect("read");
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(snap.instance, inst);
    assert_eq!(snap.ics, ics, "constraints Eq-equal after remap");
}

#[test]
fn interleaved_loads_share_one_interner_without_collisions() {
    // Two different files whose file-local id 0 names *different*
    // strings: decoding both in one process must keep them distinct (the
    // remap is per-file, the interner global).
    let mut rng = XorShift::new(31337);
    let schema = Schema::builder()
        .relation("t", ["v"])
        .finish()
        .unwrap()
        .into_shared();
    let pool = fresh_symbols(&mut rng, 2, "twin");
    let make = |name: &str, tag: &str| {
        let mut inst = Instance::empty(schema.clone());
        inst.insert_named("t", [cqa_relational::s(name)]).unwrap();
        let dir = scratch(tag);
        snapshot::write(&dir, &inst, &IcSet::default(), 0, None).unwrap();
        dir
    };
    let dir_a = make(&pool[0], "twin-a");
    let dir_b = make(&pool[1], "twin-b");
    let a = snapshot::read(&dir_a).unwrap().instance;
    let b = snapshot::read(&dir_b).unwrap().instance;
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
    let get = |inst: &Instance| -> String {
        inst.relation_named("t")
            .unwrap()
            .iter()
            .next()
            .unwrap()
            .get(0)
            .as_str()
            .unwrap()
            .to_string()
    };
    assert_eq!(get(&a), pool[0]);
    assert_eq!(get(&b), pool[1]);

    // And a joint set over both instances still sorts by text.
    let mut joint = BTreeSet::new();
    joint.extend(a.atoms());
    joint.extend(b.atoms());
    let texts: Vec<String> = joint
        .iter()
        .map(|at| at.tuple.get(0).as_str().unwrap().to_string())
        .collect();
    let mut sorted = texts.clone();
    sorted.sort();
    assert_eq!(texts, sorted, "joint BTreeSet order is textual");
}
