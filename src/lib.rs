#![warn(missing_docs)]

//! # cqa — consistent query answering with null values
//!
//! A complete, from-scratch implementation of
//!
//! > Loreto Bravo and Leopoldo Bertossi.
//! > *Semantically Correct Query Answers in the Presence of Null Values.*
//! > EDBT 2006 workshops / arXiv cs/0604076.
//!
//! An inconsistent database still contains mostly-consistent data. This
//! library answers queries *consistently* — returning exactly the answers
//! that hold in **every** minimal repair of the database — under a
//! null-value semantics that matches what commercial DBMSs actually do
//! with `NULL`, and that repairs referential constraints by inserting
//! `null` rather than inventing values.
//!
//! ## Quick start
//!
//! ```
//! use cqa::Database;
//!
//! let mut db = Database::from_script(
//!     "CREATE TABLE r (x TEXT PRIMARY KEY, y TEXT);
//!      CREATE TABLE s (u TEXT, v TEXT, FOREIGN KEY (v) REFERENCES r(x));
//!      INSERT INTO r VALUES ('a', 'b'), ('a', 'c');   -- key violation
//!      INSERT INTO s VALUES ('e', 'f'), (NULL, 'a');  -- dangling FK
//!     ",
//! )
//! .unwrap();
//! assert!(!db.is_consistent());
//! assert_eq!(db.repairs().unwrap().len(), 4); // the paper's Example 19
//!
//! // 'a' appears as a referenced key in every repair:
//! let answers = db.consistent_answers("q(v) :- s(u, v).").unwrap();
//! assert_eq!(answers.len(), 1);
//! ```
//!
//! ## Crate map
//!
//! | Layer | Crate | Paper sections |
//! |-------|-------|----------------|
//! | values, schemas, instances, Δ | [`relational`] | §2 |
//! | constraints, `A(ψ)`, `⊨_N` | [`constraints`] | §2–3 |
//! | disjunctive ASP engine | [`asp`] | §5–6 substrate |
//! | repairs, Π(D,IC), CQA | [`core`] | §4–6 |
//! | SQL/Datalog front-end | [`sql`] | — |
//!
//! The facade [`Database`] type bundles the common path; drop to the
//! re-exported crates for full control (repair semantics, program styles,
//! alternative null semantics, the classic repair baseline, …).

pub use cqa_asp as asp;
pub use cqa_constraints as constraints;
pub use cqa_core as core;
pub use cqa_relational as relational;
pub use cqa_sql as sql;
pub use cqa_storage as storage;

/// The common imports.
pub mod prelude {
    pub use crate::Database;
    pub use cqa_constraints::{builders, c, v, CmpOp, Constraint, Ic, IcSet, Nnc, SatMode};
    pub use cqa_core::{
        consistent_answers, repairs, ConjunctiveQuery, ProgramStyle, Query, RepairConfig,
        RepairSemantics,
    };
    pub use cqa_relational::{i, null, s, Instance, Schema, Tuple, Value};
}

use cqa_constraints::IcSet;
use cqa_core::query::AnswerSemantics;
use cqa_core::{CoreError, CqaCaches, ProgramStyle, RepairConfig};
use cqa_relational::{DatabaseAtom, Instance, InstanceDelta, Schema, Tuple};

pub use cqa_relational::CancelToken;
use cqa_storage::{DurableStore, RecoveryReport, StoreOptions, StoreStats, WalOp};
use std::collections::BTreeSet;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Errors surfaced by the facade.
#[derive(Debug)]
pub enum Error {
    /// Parse error from the SQL/Datalog front-end.
    Parse(cqa_sql::ParseError),
    /// Repair/CQA-layer error.
    Core(CoreError),
    /// Relational-layer error.
    Relational(cqa_relational::RelationalError),
    /// Durability-layer error (WAL/snapshot I/O or corruption).
    Storage(cqa_storage::StorageError),
    /// Mutation attempted through a clone of a persistent database.
    /// The write role stays with the handle that created or opened the
    /// store; clones are read-only views.
    ReadOnlyClone,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "{e}"),
            Error::Core(e) => write!(f, "{e}"),
            Error::Relational(e) => write!(f, "{e}"),
            Error::Storage(e) => write!(f, "{e}"),
            Error::ReadOnlyClone => write!(
                f,
                "clones of a persistent database are read-only; \
                 mutate through the handle that opened the store"
            ),
        }
    }
}

impl std::error::Error for Error {}

impl From<cqa_storage::StorageError> for Error {
    fn from(e: cqa_storage::StorageError) -> Self {
        Error::Storage(e)
    }
}

impl From<cqa_sql::ParseError> for Error {
    fn from(e: cqa_sql::ParseError) -> Self {
        Error::Parse(e)
    }
}

impl From<CoreError> for Error {
    fn from(e: CoreError) -> Self {
        Error::Core(e)
    }
}

impl From<cqa_relational::RelationalError> for Error {
    fn from(e: cqa_relational::RelationalError) -> Self {
        Error::Relational(e)
    }
}

/// A database with integrity constraints: the high-level entry point.
///
/// Each `Database` owns its [`CqaCaches`] bundle (root-violation
/// worklists, repair-program groundings): many databases in one process
/// cannot evict each other's derived results. Clones share the bundle —
/// they are views of the same tenant.
///
/// ## Durability
///
/// A database created through [`Database::persistent`] or reopened with
/// [`Database::open`] is backed by a [`DurableStore`] (WAL + segmented
/// snapshot): every `insert`/`delete`/`*_many`/`*_all` appends an
/// [`InstanceDelta`] frame — and `add_constraint` a constraint frame —
/// to the write-ahead log *before* mutating, so an acknowledged write
/// survives `kill -9`. Under the default fsync policy acknowledgments
/// are group-committed: concurrent appends share one covering fsync
/// without weakening the contract. Recovery replays surviving frames
/// through the same incremental grounding machinery ordinary churn
/// uses, so a reopened database arrives consistent *and* warm.
/// [`Database::storage_stats`] exposes the write-path counters.
/// Clones of a *persistent* database are **read-only**: two handles
/// with divergent in-memory views interleaving WAL appends would leave
/// the log describing a state neither handle holds, so the write role
/// stays with the original handle and a clone's `insert`/`delete`/
/// `add_constraint` returns [`Error::ReadOnlyClone`]. Clones still
/// query, and share the cache bundle. [`Database::instance_mut`]
/// bypasses the WAL entirely; changes made through it reach disk only
/// at the next snapshot compaction.
///
/// ## Cancellation and deadlines
///
/// Every engine entry point — repair search (sequential and parallel),
/// the Π(D, IC) program route, and both CQA pipelines — runs under a
/// cooperative cancellation governor. [`Database::with_deadline`] bounds
/// each call's wall-clock time; [`Database::cancel_handle`] hands out a
/// [`CancelToken`] another thread can trip mid-call. An interrupted call
/// returns [`CoreError::Interrupted`] (wrapped in [`Error::Core`])
/// naming the phase cut short and how many partial results were sound
/// at that point; the database and its caches stay valid — a poisoned
/// in-flight grounding is discarded, never cached.
#[derive(Debug)]
pub struct Database {
    instance: Instance,
    constraints: IcSet,
    config: RepairConfig,
    program_style: ProgramStyle,
    caches: Arc<CqaCaches>,
    storage: Option<Arc<DurableStore>>,
    recovery: Option<RecoveryReport>,
    /// Does this handle hold the write role for `storage`? Always true
    /// for in-memory databases; cleared on clones of persistent ones.
    writer: bool,
    /// Per-call wall-clock budget; `None` = unbounded.
    deadline: Option<Duration>,
    /// Shared manual-cancel root; clones share it, so tripping the
    /// handle stops in-flight work on every view of this tenant.
    cancel: CancelToken,
}

impl Clone for Database {
    fn clone(&self) -> Self {
        Database {
            instance: self.instance.clone(),
            constraints: self.constraints.clone(),
            config: self.config,
            program_style: self.program_style,
            caches: self.caches.clone(),
            storage: self.storage.clone(),
            recovery: self.recovery.clone(),
            // The write role does not travel: a clone of a persistent
            // handle is a read-only view of the same tenant.
            writer: self.storage.is_none(),
            deadline: self.deadline,
            // The cancel root *does* travel: cancelling any handle of
            // the tenant stops them all (see `reset_cancel` to detach).
            cancel: self.cancel.clone(),
        }
    }
}

impl Database {
    /// Build from a SQL script (see [`cqa_sql::parse_script`] for the
    /// grammar).
    pub fn from_script(script: &str) -> Result<Self, Error> {
        let catalog = cqa_sql::parse_script(script)?;
        Ok(Database::new(catalog.instance, catalog.constraints))
    }

    /// Build from parts.
    pub fn new(instance: Instance, constraints: IcSet) -> Self {
        Database {
            instance,
            constraints,
            config: RepairConfig::default(),
            program_style: ProgramStyle::default(),
            caches: Arc::new(CqaCaches::new()),
            storage: None,
            recovery: None,
            writer: true,
            deadline: None,
            cancel: CancelToken::new(),
        }
    }

    /// Create a durable database at `path` (a directory) seeded with
    /// `instance` and `constraints`, with default [`StoreOptions`]
    /// (fsync on every write, 1:1 compaction fraction). Fails if `path`
    /// already holds a store.
    pub fn persistent(
        path: impl AsRef<Path>,
        instance: Instance,
        constraints: IcSet,
    ) -> Result<Self, Error> {
        Database::persistent_with(path, instance, constraints, StoreOptions::default())
    }

    /// [`Database::persistent`] with explicit [`StoreOptions`] (fsync
    /// policy, compaction fraction and floor).
    pub fn persistent_with(
        path: impl AsRef<Path>,
        instance: Instance,
        constraints: IcSet,
        options: StoreOptions,
    ) -> Result<Self, Error> {
        Database::persistent_with_vfs(
            path,
            instance,
            constraints,
            options,
            Arc::new(cqa_storage::RealVfs),
        )
    }

    /// [`Database::persistent_with`] against an explicit
    /// [`Vfs`](cqa_storage::Vfs) — the fault-injection entry point used
    /// by the robustness suite.
    pub fn persistent_with_vfs(
        path: impl AsRef<Path>,
        instance: Instance,
        constraints: IcSet,
        options: StoreOptions,
        vfs: Arc<dyn cqa_storage::Vfs>,
    ) -> Result<Self, Error> {
        let store =
            DurableStore::create_with_vfs(path.as_ref(), &instance, &constraints, options, vfs)?;
        let mut db = Database::new(instance, constraints);
        db.storage = Some(Arc::new(store));
        Ok(db)
    }

    /// Reopen the durable database at `path` with default
    /// [`StoreOptions`]: load the snapshot, replay surviving WAL frames
    /// (truncating any torn tail), and warm the grounding/worklist
    /// caches along the way. [`Database::recovery_report`] says what
    /// recovery found.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, Error> {
        Database::open_with(path, StoreOptions::default())
    }

    /// [`Database::open`] with explicit [`StoreOptions`].
    ///
    /// Recovery replays the WAL through the same incremental paths
    /// ordinary churn uses: the grounding cache is warmed on the
    /// snapshot state, the deltas are applied, and the final state is
    /// re-warmed — the second pass finds the drifted entry and evolves
    /// it in place (DRed for removals, seminaive for insertions), so the
    /// reopened database resumes the warm-cache trajectory a
    /// never-crashed process had.
    pub fn open_with(path: impl AsRef<Path>, options: StoreOptions) -> Result<Self, Error> {
        Database::open_with_vfs(path, options, Arc::new(cqa_storage::RealVfs))
    }

    /// [`Database::open_with`] against an explicit
    /// [`Vfs`](cqa_storage::Vfs) — the fault-injection entry point used
    /// by the robustness suite.
    pub fn open_with_vfs(
        path: impl AsRef<Path>,
        options: StoreOptions,
        vfs: Arc<dyn cqa_storage::Vfs>,
    ) -> Result<Self, Error> {
        let (store, recovered) = DurableStore::open_with_vfs(path.as_ref(), options, vfs)?;
        let caches = Arc::new(CqaCaches::new());
        let style = ProgramStyle::default();
        let mut instance = recovered.snapshot_instance;
        let mut constraints = recovered.ics;
        let replaying_constraints = recovered
            .ops
            .iter()
            .any(|(_, op)| matches!(op, WalOp::Constraint(_)));
        if !recovered.ops.is_empty() && !replaying_constraints {
            // Ground the snapshot state first, then evolve that grounding
            // across the whole WAL in one incremental step — the replay
            // cost scales with the net drift, not the WAL length.
            cqa_core::warm_caches_in(&instance, &constraints, style, &caches)?;
        }
        for (_, op) in &recovered.ops {
            match op {
                WalOp::Delta(delta) => {
                    instance.apply(delta.added.iter().cloned(), delta.removed.iter().cloned());
                }
                // A replayed constraint changes the program itself, which
                // invalidates any grounding keyed on the old constraint
                // set — so with constraint frames in the log the single
                // warm below (on the final state) is the whole warm-up.
                WalOp::Constraint(con) => constraints.push(con.clone()),
            }
        }
        cqa_core::warm_caches_in(&instance, &constraints, style, &caches)?;
        Ok(Database {
            instance,
            constraints,
            config: RepairConfig::default(),
            program_style: style,
            caches,
            storage: Some(Arc::new(store)),
            recovery: Some(recovered.report),
            writer: true,
            deadline: None,
            cancel: CancelToken::new(),
        })
    }

    /// What recovery found and did, if this database came from
    /// [`Database::open`]: snapshot size, frames replayed/skipped, torn
    /// bytes truncated, and the durable write horizon
    /// ([`RecoveryReport::last_seq`]).
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// `true` iff this database is backed by a [`DurableStore`].
    pub fn is_persistent(&self) -> bool {
        self.storage.is_some()
    }

    /// `true` iff this handle may mutate: always for in-memory
    /// databases, and for the handle that created/opened a persistent
    /// store — but not for its clones (see [`Error::ReadOnlyClone`]).
    pub fn is_writer(&self) -> bool {
        self.storage.is_none() || self.writer
    }

    /// Force all acknowledged writes to stable storage regardless of the
    /// configured [`FsyncPolicy`](cqa_storage::FsyncPolicy). No-op for
    /// in-memory databases.
    pub fn sync(&self) -> Result<(), Error> {
        if let Some(store) = &self.storage {
            store.sync()?;
        }
        Ok(())
    }

    /// Write-path counters of the backing store ([`StoreStats`]: fsyncs,
    /// group-commit batch sizes, segments written vs reused, …), or
    /// `None` for an in-memory database. Named stats, cheap to copy —
    /// meaningful as before/after deltas, like the cache and planner
    /// stats.
    pub fn storage_stats(&self) -> Option<StoreStats> {
        self.storage.as_ref().map(|s| s.stats())
    }

    /// Mutation guard: a clone of a persistent database does not hold
    /// the write role and must not append to the shared WAL.
    fn check_writable(&self) -> Result<(), Error> {
        if self.storage.is_some() && !self.writer {
            return Err(Error::ReadOnlyClone);
        }
        Ok(())
    }

    /// Append `delta` to the WAL (if persistent). Called *before* the
    /// in-memory mutation, so an acknowledged write is always
    /// recoverable.
    fn log_delta(&self, delta: &InstanceDelta) -> Result<(), Error> {
        if let Some(store) = &self.storage {
            store.append_delta(delta)?;
        }
        Ok(())
    }

    /// Post-mutation housekeeping: fold the WAL into the snapshot when
    /// it has outgrown the configured fraction — rewriting only the
    /// segments of relations the folded frames touched.
    fn maybe_compact(&self) -> Result<(), Error> {
        if let Some(store) = &self.storage {
            store.maybe_compact(&self.instance, &self.constraints)?;
        }
        Ok(())
    }

    /// Resolve `(relation, tuple)` to a validated [`DatabaseAtom`]:
    /// unknown relations and arity mismatches are errors *before* any
    /// WAL append or mutation.
    fn atom_for(&self, relation: &str, tuple: Tuple) -> Result<DatabaseAtom, Error> {
        let rel = self.schema().require(relation)?;
        let expected = self.schema().relation(rel).arity();
        if tuple.arity() != expected {
            return Err(Error::Relational(
                cqa_relational::RelationalError::ArityMismatch {
                    relation: relation.to_string(),
                    expected,
                    actual: tuple.arity(),
                },
            ));
        }
        Ok(DatabaseAtom::new(rel, tuple))
    }

    /// This database's cache bundle (worklist + grounding stats live
    /// here).
    pub fn caches(&self) -> &CqaCaches {
        &self.caches
    }

    /// Routing counters of the fast-path query planner for this
    /// database's traffic: how many `consistent_answers*` calls were
    /// answered by the FO-rewrite route, the chase fast path, or fell
    /// back to repair enumeration, and which route the most recent call
    /// took. Meaningful as before/after deltas (PR-8 stats idiom).
    pub fn planner_stats(&self) -> cqa_core::PlannerStats {
        self.caches.planner.stats()
    }

    /// The route the planner would take for a Datalog-style query under
    /// this database's constraints and repair configuration — pure
    /// analysis, no data is touched. `declined` lists why a fast path
    /// was refused.
    pub fn query_plan(&self, query: &str) -> Result<cqa_core::QueryPlan, Error> {
        let q = cqa_sql::parse_query(self.schema(), query)?;
        Ok(cqa_core::plan_query(&self.constraints, &q, &self.config))
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        self.instance.schema()
    }

    /// The current instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The constraint set.
    pub fn constraints(&self) -> &IcSet {
        &self.constraints
    }

    /// Mutable access to the instance (for programmatic loading).
    pub fn instance_mut(&mut self) -> &mut Instance {
        &mut self.instance
    }

    /// Override the repair-search configuration.
    pub fn with_config(mut self, config: RepairConfig) -> Self {
        self.config = config;
        self
    }

    /// Override the repair-program style.
    pub fn with_program_style(mut self, style: ProgramStyle) -> Self {
        self.program_style = style;
        self
    }

    /// Bound every subsequent engine call (`repairs`, the program route,
    /// CQA) to at most `deadline` of wall-clock time. The budget is
    /// per-call, not cumulative: each call starts a fresh timer. A call
    /// that exceeds it returns [`CoreError::Interrupted`] and leaves the
    /// database and its caches fully usable.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Set or clear the per-call deadline in place (the `&mut` form of
    /// [`Database::with_deadline`]).
    pub fn set_deadline(&mut self, deadline: Option<Duration>) {
        self.deadline = deadline;
    }

    /// A handle that cancels in-flight engine calls on this database
    /// (and its clones — they share the root token). Typical use: clone
    /// the database into a worker thread, keep the handle, and
    /// [`CancelToken::cancel`] it when the caller loses interest. The
    /// trip is sticky: call [`Database::reset_cancel`] before issuing
    /// new work through a tripped handle.
    pub fn cancel_handle(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Replace the cancel root with a fresh, untripped token. Detaches
    /// this handle from previously exported [`Database::cancel_handle`]s
    /// and from clones (which keep the old root).
    pub fn reset_cancel(&mut self) {
        self.cancel = CancelToken::new();
    }

    /// The token governing one engine call: the shared manual-cancel
    /// root, with this call's deadline layered on top when one is set.
    fn op_token(&self) -> CancelToken {
        match self.deadline {
            Some(d) => self.cancel.child_with_timeout(d),
            None => self.cancel.clone(),
        }
    }

    /// Add a constraint from text, e.g. `"r(x, y) -> exists z: s(x, z)"`
    /// or `"not null r(y)"`.
    ///
    /// On a persistent database the constraint is appended to the WAL as
    /// a tagged frame *before* the in-memory set changes — an O(delta)
    /// append with the same acknowledgment contract as data writes, not
    /// a snapshot rewrite. Recovery replays it in sequence order with
    /// the data deltas; the next ordinary compaction folds it into the
    /// manifest.
    pub fn add_constraint(&mut self, name: &str, text: &str) -> Result<(), Error> {
        self.check_writable()?;
        let con = cqa_sql::parse_constraint(self.schema(), name, text)?;
        if let Some(store) = &self.storage {
            store.append_constraint(&con)?;
        }
        self.constraints.push(con);
        self.maybe_compact()?;
        Ok(())
    }

    /// Insert a tuple; `Ok(true)` when it was new. On a persistent
    /// database the delta is WAL-appended (and, per policy, fsynced)
    /// *before* the in-memory mutation.
    pub fn insert(&mut self, relation: &str, tuple: impl Into<Tuple>) -> Result<bool, Error> {
        self.check_writable()?;
        let atom = self.atom_for(relation, tuple.into())?;
        if self.instance.contains(&atom) {
            return Ok(false); // set semantics: no-ops never reach the WAL
        }
        let mut delta = InstanceDelta::default();
        delta.added.insert(atom.clone());
        self.log_delta(&delta)?;
        self.instance.insert(atom.rel, atom.tuple)?;
        self.maybe_compact()?;
        Ok(true)
    }

    /// Delete a tuple; `true` when it was present. Cached groundings of
    /// the repair program survive the deletion — the next program-route
    /// call regrounds incrementally by delete–rederive instead of
    /// rebuilding. On a persistent database the delta is WAL-appended
    /// *before* the in-memory mutation.
    pub fn delete(&mut self, relation: &str, tuple: impl Into<Tuple>) -> Result<bool, Error> {
        self.check_writable()?;
        // Symmetric with insert: an arity typo is an error, not a silent
        // "tuple was not present".
        let atom = self.atom_for(relation, tuple.into())?;
        if !self.instance.contains(&atom) {
            return Ok(false);
        }
        let mut delta = InstanceDelta::default();
        delta.removed.insert(atom.clone());
        self.log_delta(&delta)?;
        self.instance.remove(atom.rel, &atom.tuple);
        self.maybe_compact()?;
        Ok(true)
    }

    /// Insert a batch of tuples into one relation as a *single*
    /// [`InstanceDelta`] — one WAL frame, one cache-replay step — instead
    /// of N single-fact rounds. Returns how many tuples were actually
    /// new. The result is pinned equal to the equivalent sequence of
    /// [`Database::insert`] calls; only the delta granularity differs.
    pub fn insert_many(
        &mut self,
        relation: &str,
        tuples: impl IntoIterator<Item = impl Into<Tuple>>,
    ) -> Result<usize, Error> {
        self.check_writable()?;
        let mut delta = InstanceDelta::default();
        for tuple in tuples {
            let atom = self.atom_for(relation, tuple.into())?;
            if !self.instance.contains(&atom) {
                delta.added.insert(atom);
            }
        }
        if delta.added.is_empty() {
            return Ok(0);
        }
        self.log_delta(&delta)?;
        let count = delta.added.len();
        self.instance.apply(delta.added, std::iter::empty());
        self.maybe_compact()?;
        Ok(count)
    }

    /// Delete a batch of tuples from one relation as a single
    /// [`InstanceDelta`] / WAL frame. Returns how many tuples were
    /// actually present. Validation is per-tuple, exactly as
    /// [`Database::delete`].
    pub fn delete_many(
        &mut self,
        relation: &str,
        tuples: impl IntoIterator<Item = impl Into<Tuple>>,
    ) -> Result<usize, Error> {
        self.check_writable()?;
        let mut delta = InstanceDelta::default();
        for tuple in tuples {
            let atom = self.atom_for(relation, tuple.into())?;
            if self.instance.contains(&atom) {
                delta.removed.insert(atom);
            }
        }
        if delta.removed.is_empty() {
            return Ok(0);
        }
        self.log_delta(&delta)?;
        let count = delta.removed.len();
        self.instance.apply(std::iter::empty(), delta.removed);
        self.maybe_compact()?;
        Ok(count)
    }

    /// Insert a batch of `(relation, tuple)` rows spanning *any* mix of
    /// relations as a single [`InstanceDelta`]: one WAL frame and, under
    /// `FsyncPolicy::Always`, one fsync for the whole batch — not one
    /// per row. Returns how many rows were actually new. Validation is
    /// per-row and happens before anything reaches the WAL, exactly as
    /// [`Database::insert`].
    pub fn insert_all<'a>(
        &mut self,
        rows: impl IntoIterator<Item = (&'a str, impl Into<Tuple>)>,
    ) -> Result<usize, Error> {
        self.check_writable()?;
        let mut delta = InstanceDelta::default();
        for (relation, tuple) in rows {
            let atom = self.atom_for(relation, tuple.into())?;
            if !self.instance.contains(&atom) {
                delta.added.insert(atom);
            }
        }
        if delta.added.is_empty() {
            return Ok(0);
        }
        self.log_delta(&delta)?;
        let count = delta.added.len();
        self.instance.apply(delta.added, std::iter::empty());
        self.maybe_compact()?;
        Ok(count)
    }

    /// Delete a batch of `(relation, tuple)` rows spanning any mix of
    /// relations as a single [`InstanceDelta`] / WAL frame / fsync.
    /// Returns how many rows were actually present. Validation is
    /// per-row, exactly as [`Database::delete`].
    pub fn delete_all<'a>(
        &mut self,
        rows: impl IntoIterator<Item = (&'a str, impl Into<Tuple>)>,
    ) -> Result<usize, Error> {
        self.check_writable()?;
        let mut delta = InstanceDelta::default();
        for (relation, tuple) in rows {
            let atom = self.atom_for(relation, tuple.into())?;
            if self.instance.contains(&atom) {
                delta.removed.insert(atom);
            }
        }
        if delta.removed.is_empty() {
            return Ok(0);
        }
        self.log_delta(&delta)?;
        let count = delta.removed.len();
        self.instance.apply(std::iter::empty(), delta.removed);
        self.maybe_compact()?;
        Ok(count)
    }

    /// Replace this database's cache bundle with one whose grounding
    /// cache is bounded by `budget` (summed `atoms + rules` across cached
    /// ground programs). Detaches the tenant from any clones sharing the
    /// old bundle.
    pub fn with_grounding_budget(mut self, budget: usize) -> Self {
        self.caches = Arc::new(CqaCaches::with_grounding_budget(budget));
        self
    }

    /// Is the database consistent under the paper's `|=_N`?
    pub fn is_consistent(&self) -> bool {
        cqa_constraints::is_consistent(&self.instance, &self.constraints)
    }

    /// Human-readable violation reports.
    pub fn violations(&self) -> Vec<String> {
        cqa_constraints::violations(
            &self.instance,
            &self.constraints,
            cqa_constraints::SatMode::NullAware,
        )
        .iter()
        .map(|v| v.display(self.schema(), &self.constraints))
        .collect()
    }

    /// All repairs (Definition 7). Honours the deadline/cancel governor
    /// (see [`Database::with_deadline`]).
    pub fn repairs(&self) -> Result<Vec<Instance>, Error> {
        Ok(cqa_core::repairs_with_config_governed(
            &self.instance,
            &self.constraints,
            self.config,
            &self.caches,
            &self.op_token(),
        )?)
    }

    /// Repairs via the Definition-9 logic program (Theorem 4 route).
    /// Honours the deadline/cancel governor.
    pub fn repairs_via_program(&self) -> Result<Vec<Instance>, Error> {
        Ok(cqa_core::repairs_via_program_governed(
            &self.instance,
            &self.constraints,
            self.program_style,
            false,
            &self.caches,
            &self.op_token(),
        )?)
    }

    /// [`Database::repairs_via_program`] with an explicit solver thread
    /// count: independent ground-program components fan across a scoped
    /// pool and coNP minimality checks race a solver portfolio. The
    /// repair set is identical at every thread count.
    pub fn repairs_via_program_threaded(&self, threads: usize) -> Result<Vec<Instance>, Error> {
        Ok(cqa_core::repairs_via_program_solved(
            &self.instance,
            &self.constraints,
            self.program_style,
            false,
            cqa_core::SolveOptions { threads },
            &self.caches,
            &self.op_token(),
        )?)
    }

    /// The repair program Π(D, IC), rendered.
    pub fn repair_program_text(&self) -> Result<String, Error> {
        let p = cqa_core::repair_program(&self.instance, &self.constraints, self.program_style)?;
        Ok(p.to_string())
    }

    /// Consistent answers (Definition 8) for a Datalog-style query, e.g.
    /// `"q(x) :- r(x, y), not s(y), y <> 'b'."`.
    pub fn consistent_answers(&self, query: &str) -> Result<BTreeSet<Tuple>, Error> {
        let q = cqa_sql::parse_query(self.schema(), query)?;
        let answers = cqa_core::consistent_answers_governed(
            &self.instance,
            &self.constraints,
            &q,
            self.config,
            AnswerSemantics::IncludeNullAnswers,
            cqa_core::QueryNullSemantics::NullAsValue,
            &self.caches,
            &self.op_token(),
        )?;
        Ok(answers.tuples)
    }

    /// Consistent answer for a boolean query: `yes`/`no`.
    pub fn consistent_answer_boolean(&self, query: &str) -> Result<bool, Error> {
        let q = cqa_sql::parse_query(self.schema(), query)?;
        let answers = cqa_core::consistent_answers_governed(
            &self.instance,
            &self.constraints,
            &q,
            self.config,
            AnswerSemantics::IncludeNullAnswers,
            cqa_core::QueryNullSemantics::NullAsValue,
            &self.caches,
            &self.op_token(),
        )?;
        Ok(answers.is_yes())
    }

    /// Plain (possibly inconsistent) answers on the current instance.
    pub fn answers(&self, query: &str) -> Result<BTreeSet<Tuple>, Error> {
        let q = cqa_sql::parse_query(self.schema(), query)?;
        Ok(q.eval(&self.instance))
    }

    /// Consistent answers under SQL's three-valued null reading for the
    /// query itself (joins/comparisons touching null are unknown) — the
    /// `|=q_N` variant of the paper's Section 7(a).
    pub fn consistent_answers_sql(&self, query: &str) -> Result<BTreeSet<Tuple>, Error> {
        let q = cqa_sql::parse_query(self.schema(), query)?;
        let answers = cqa_core::consistent_answers_governed(
            &self.instance,
            &self.constraints,
            &q,
            self.config,
            AnswerSemantics::IncludeNullAnswers,
            cqa_core::QueryNullSemantics::SqlThreeValued,
            &self.caches,
            &self.op_token(),
        )?;
        Ok(answers.tuples)
    }

    /// Repairs together with the decision steps that produced them
    /// (which constraint fired, what was inserted/deleted). Honours the
    /// deadline/cancel governor.
    pub fn repairs_with_trace(&self) -> Result<Vec<cqa_core::TracedRepair>, Error> {
        Ok(cqa_core::repairs_with_trace_governed(
            &self.instance,
            &self.constraints,
            self.config,
            &self.caches,
            &self.op_token(),
        )?)
    }

    /// Render the instance as ASCII tables.
    pub fn tables(&self) -> String {
        cqa_relational::display::instance_tables(&self.instance)
    }
}

/// Re-export of commonly used leaf types at the crate root.
pub use cqa_core::query::AnswerSemantics as NullAnswerSemantics;
pub use cqa_core::InterruptPhase;
pub use cqa_relational::{i, null, s, Cancelled, Value as DbValue};

#[cfg(test)]
mod tests {
    use super::*;

    fn example19_db() -> Database {
        Database::from_script(
            "CREATE TABLE r (x TEXT PRIMARY KEY, y TEXT);
             CREATE TABLE s (u TEXT, v TEXT, FOREIGN KEY (v) REFERENCES r(x));
             INSERT INTO r VALUES ('a', 'b'), ('a', 'c');
             INSERT INTO s VALUES ('e', 'f'), (NULL, 'a');",
        )
        .unwrap()
    }

    #[test]
    fn facade_end_to_end() {
        let db = example19_db();
        assert!(!db.is_consistent());
        assert_eq!(db.violations().len(), 3); // FD both directions + FK
        assert_eq!(db.repairs().unwrap().len(), 4);
        assert_eq!(db.repairs_via_program().unwrap(), db.repairs().unwrap());
        let answers = db.consistent_answers("q(v) :- s(u, v).").unwrap();
        assert_eq!(answers.len(), 1);
        assert!(db.consistent_answer_boolean("b() :- s(u, 'a').").unwrap());
        assert!(!db.consistent_answer_boolean("b() :- s(u, 'f').").unwrap());
    }

    #[test]
    fn facade_mutation_and_constraints() {
        let mut db = Database::from_script(
            "CREATE TABLE p (a TEXT, b TEXT);
             CREATE TABLE q (x TEXT);",
        )
        .unwrap();
        db.insert("p", [s("1"), s("2")]).unwrap();
        assert!(db.is_consistent());
        db.add_constraint("incl", "p(x, y) -> q(x)").unwrap();
        assert!(!db.is_consistent());
        assert_eq!(db.repairs().unwrap().len(), 2);
        assert!(db.repair_program_text().unwrap().contains("p_fa"));
    }

    #[test]
    fn facade_delete_validates_like_insert() {
        let mut db = example19_db();
        // Present tuple: removed. Absent tuple of the right arity: false.
        assert!(db.delete("r", [s("a"), s("b")]).unwrap());
        assert!(!db.delete("r", [s("zz"), s("b")]).unwrap());
        // Wrong arity and unknown relation are errors, exactly as insert.
        assert!(matches!(
            db.delete("r", [s("a")]),
            Err(Error::Relational(
                cqa_relational::RelationalError::ArityMismatch { .. }
            ))
        ));
        assert!(matches!(
            db.delete("nope", [s("a")]),
            Err(Error::Relational(
                cqa_relational::RelationalError::UnknownRelation(_)
            ))
        ));
    }

    #[test]
    fn facade_plain_answers_differ_from_consistent_ones() {
        let db = example19_db();
        let plain = db.answers("q(v) :- s(u, v).").unwrap();
        let consistent = db.consistent_answers("q(v) :- s(u, v).").unwrap();
        assert_eq!(plain.len(), 2);
        assert_eq!(consistent.len(), 1);
        assert!(consistent.is_subset(&plain));
    }

    #[test]
    fn traces_and_sql_semantics_via_facade() {
        let db = example19_db();
        let traced = db.repairs_with_trace().unwrap();
        assert_eq!(traced.len(), 4);
        assert!(traced.iter().all(|t| !t.steps.is_empty()));
        // SQL-mode CQA runs and returns a subset of as-value CQA.
        let sql = db.consistent_answers_sql("q(v) :- s(u, v).").unwrap();
        let plain = db.consistent_answers("q(v) :- s(u, v).").unwrap();
        assert!(sql.is_subset(&plain));
    }

    #[test]
    fn tables_render() {
        let db = example19_db();
        let text = db.tables();
        assert!(text.contains("r\n"));
        assert!(text.contains("null"));
    }
}
