//! The polynomial fast-path planner: consistent answers without repair
//! enumeration.
//!
//! CQA's general complexity is the price of generality — Π₂ᵖ-hard in the
//! worst case, and even the direct engine pays 2ᵏ repair materialisations
//! for k independent conflicts. But the *common* cases of the paper's
//! Section 3 (key constraints, NOT NULL, denials) admit polynomial
//! routes, and the planner dispatches them automatically:
//!
//! * key FDs + quantifier-free query → **FO-rewrite** (index probes on D),
//! * any deletion-only set → **chase** (true/false-tuple classification),
//! * everything else → the exact enumeration engine, unchanged.
//!
//! Run with `cargo run --release --example fast_path`.

use cqa::core::query::{AnswerSemantics, QueryNullSemantics};
use cqa::core::{PlanRoute, RepairConfig};
use cqa::Database;
use std::time::Instant;

fn main() -> Result<(), cqa::Error> {
    // A register with a primary key — an FD plus a NOT NULL, exactly the
    // key-constraint class the FO-rewrite route covers.
    let mut db = Database::from_script(
        "
        CREATE TABLE r (k TEXT PRIMARY KEY, v TEXT);
        INSERT INTO r VALUES ('dup', 'a'), ('dup', 'b');   -- key conflict
        ",
    )?;
    // Grow it far past what repair enumeration could ever touch: with 8
    // conflicting pairs there are 2^8 = 256 repairs of the whole
    // instance; at 20k clean rows that is 5M tuple copies per query.
    for i in 0..20_000 {
        db.insert("r", [cqa::s(&format!("k{i}")), cqa::s("clean")])?;
    }
    for i in 0..7 {
        db.insert("r", [cqa::s(&format!("dup{i}")), cqa::s("a")])?;
        db.insert("r", [cqa::s(&format!("dup{i}")), cqa::s("b")])?;
    }

    // Ask the planner before running anything: which route, and why.
    let plan = db.query_plan("q(k, v) :- r(k, v).")?;
    println!("plan for q(k, v) :- r(k, v).      -> {:?}", plan.route);
    assert_eq!(plan.route, PlanRoute::FoRewrite);

    let t = Instant::now();
    let answers = db.consistent_answers("q(k, v) :- r(k, v).")?;
    let fast = t.elapsed();
    println!(
        "FO-rewrite: {} consistent answers over {} tuples in {:.1} ms",
        answers.len(),
        db.instance().len(),
        fast.as_secs_f64() * 1e3,
    );
    // Every conflicted key dropped out; every clean row survived.
    assert_eq!(answers.len(), 20_000);

    // The same request through the enumeration engine, on a small slice
    // of the data — the point of the planner is that this path's cost is
    // set by 2^conflicts × instance size, not by the query.
    let small = Database::from_script(
        "
        CREATE TABLE r (k TEXT PRIMARY KEY, v TEXT);
        INSERT INTO r VALUES ('dup', 'a'), ('dup', 'b');
        ",
    )?;
    let q = cqa::sql::parse_query(small.schema(), "q(k, v) :- r(k, v).")?;
    let t = Instant::now();
    let enumerated = cqa::core::consistent_answers_enumerated(
        small.instance(),
        small.constraints(),
        &q,
        RepairConfig::default(),
        AnswerSemantics::IncludeNullAnswers,
        QueryNullSemantics::NullAsValue,
    )?;
    println!(
        "enumeration (2 tuples, 2 repairs): {} answers in {:.3} ms",
        enumerated.len(),
        t.elapsed().as_secs_f64() * 1e3,
    );

    // Routes the planner must refuse fall back transparently — the
    // declined reasons say why. An existential body variable makes
    // per-candidate certainty coNP-hard, so:
    let plan = db.query_plan("e(k) :- r(k, v).")?;
    println!(
        "plan for e(k) :- r(k, v).         -> {:?} {:?}",
        plan.route, plan.declined
    );
    assert_eq!(plan.route, PlanRoute::Enumerate);

    // The facade counts what actually ran, per tenant.
    let stats = db.planner_stats();
    println!(
        "planner stats: {} FO-rewrites, {} chases, {} fallbacks (last route {:?})",
        stats.fo_rewrite, stats.chase, stats.fallbacks, stats.last_route,
    );
    Ok(())
}
