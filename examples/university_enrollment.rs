//! The university scenario of the paper's Examples 5, 14 and 15: course
//! records referencing lecturers, with missing information repaired by
//! `null` — and a comparison with the classic (pre-null) repair semantics
//! where insertions must invent concrete values.
//!
//! Run with `cargo run --example university_enrollment`.

use cqa::constraints::{builders, IcSet};
use cqa::core::classic;
use cqa::prelude::*;
use cqa::relational::display::{instance_set, instance_tables};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Example 5's schema: Course(Code, ID, Term), Exp(ID, Code, Times)
    // with the foreign key (ID, Code) → Exp(ID, Code).
    let schema = Schema::builder()
        .relation("Course", ["Code", "ID", "Term"])
        .relation("Exp", ["ID", "Code", "Times"])
        .finish()?
        .into_shared();
    let mut d = Instance::empty(schema.clone());
    d.insert_named("Course", [s("CS27"), i(21).to_string().into(), s("W04")])?;
    d.insert_named("Course", [s("CS18"), s("34"), null()])?;
    d.insert_named("Course", [s("CS50"), null(), s("W05")])?;
    d.insert_named("Exp", [s("21"), s("CS27"), s("3")])?;
    d.insert_named("Exp", [s("34"), s("CS18"), null()])?;
    d.insert_named("Exp", [s("45"), s("CS32"), s("2")])?;

    let fk = builders::foreign_key(&schema, "Course", &[1, 0], "Exp", &[0, 1])?;
    let ics = IcSet::new([Constraint::from(fk)]);

    println!("{}", instance_tables(&d));
    // DB2 accepts this database (simple match): Course(CS50, null, W05)
    // has null in a referencing column, so the FK is not checked.
    println!(
        "consistent under |=_N (simple-match generalisation): {}",
        cqa::constraints::is_consistent(&d, &ics)
    );
    // Inserting (CS41, 18, null) is rejected — 18/CS41 has no Exp row:
    println!(
        "insert Course(CS41, 18, null) allowed: {}",
        cqa::constraints::insertion_allowed(&d, &ics, "Course", [s("CS41"), s("18"), null()])
    );

    // Examples 14/15: Course(ID, Code) → ∃Name Student(ID, Name).
    println!("\n== Examples 14/15: repairs with nulls vs classic repairs ==");
    let schema2 = Schema::builder()
        .relation("Course2", ["ID", "Code"])
        .relation("Student", ["ID", "Name"])
        .finish()?
        .into_shared();
    let mut d2 = Instance::empty(schema2.clone());
    d2.insert_named("Course2", [s("21"), s("C15")])?;
    d2.insert_named("Course2", [s("34"), s("C18")])?; // dangling
    d2.insert_named("Student", [s("21"), s("Ann")])?;
    d2.insert_named("Student", [s("45"), s("Paul")])?;
    let ric = builders::foreign_key(&schema2, "Course2", &[0], "Student", &[0])?;
    let ics2 = IcSet::new([Constraint::from(ric)]);

    println!("null-based repairs (always exactly these two):");
    for r in repairs(&d2, &ics2)? {
        println!("  {}", instance_set(&r));
    }

    println!("classic repairs grow with the candidate domain:");
    for k in [1usize, 3, 6] {
        let domain: Vec<Value> = (0..k).map(|j| s(&format!("mu{j}"))).collect();
        let reps = classic::repairs_with_domain(&d2, &ics2, &domain, 1 << 20)?;
        println!("  |domain| = {k}: {} repairs", reps.len());
    }
    println!("(over the paper's infinite domain: infinitely many — the\n reason the null-based semantics exists)");
    Ok(())
}
