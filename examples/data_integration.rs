//! Virtual data integration — the paper's opening motivation: when data
//! comes from autonomous sources, you *cannot* repair it physically; the
//! only place to restore semantics is query time.
//!
//! Two "sources" publish employee records into one global schema. The
//! merged view violates the global key and references departments one
//! source never shipped. Consistent query answering extracts the
//! reliable core without touching either source.
//!
//! Run with `cargo run --example data_integration`.

use cqa::Database;

fn source_a() -> &'static str {
    "INSERT INTO employee VALUES (1, 'Ann',  'cs'),
                                 (2, 'Bob',  'ee');
     INSERT INTO department VALUES ('cs', 'Science Hall');"
}

fn source_b() -> &'static str {
    // Source B disagrees about employee 2's department and ships a
    // record referencing a department it never describes.
    "INSERT INTO employee VALUES (2, 'Bob', 'me'),
                                 (3, 'Cid', 'archives');
     INSERT INTO department VALUES ('ee', 'East Wing');"
}

fn main() -> Result<(), cqa::Error> {
    let schema_ddl = "
        CREATE TABLE employee (id INT, name TEXT, dept TEXT);
        CREATE TABLE department (code TEXT, building TEXT);
        CONSTRAINT emp_key_name: employee(i, n, d), employee(i, n2, d2) -> n = n2;
        CONSTRAINT emp_key_dept: employee(i, n, d), employee(i, n2, d2) -> d = d2;
        CONSTRAINT dept_exists:  employee(i, n, d) -> exists b: department(d, b);
    ";
    // The global, virtual database: schema + the union of both sources.
    let script = format!("{schema_ddl}\n{}\n{}", source_a(), source_b());
    let db = Database::from_script(&script)?;

    println!("== the merged (virtual) database ==");
    println!("{}", db.tables());
    println!("consistent: {}", db.is_consistent());
    for v in db.violations() {
        println!("  {v}");
    }

    let repairs = db.repairs()?;
    println!("\n{} repairs of the virtual instance", repairs.len());

    println!("\n== what can be answered reliably, source conflicts and all ==");
    for (label, q) in [
        (
            "employees whose department is certain",
            "q(n, d) :- employee(i, n, d).",
        ),
        (
            "employees certainly on record",
            "q(n) :- employee(i, n, d).",
        ),
        (
            "departments with a certain building",
            "q(d, b) :- department(d, b).",
        ),
    ] {
        println!("{label}:");
        println!("  {q}");
        for t in db.consistent_answers(q)? {
            println!("    {t}");
        }
    }

    // The logic-program route gives the same answers (Theorem 4):
    let direct = db.repairs()?;
    let programmatic = db.repairs_via_program()?;
    println!(
        "\nengine repairs == program repairs: {}",
        direct == programmatic
    );

    // Explanations: why is employee 3 unreliable?
    println!("\n== provenance of one repair ==");
    let traced = db.repairs_with_trace()?;
    for step in &traced[0].steps {
        let action = match step.action {
            cqa::core::RepairAction::Insert => "insert",
            cqa::core::RepairAction::Delete => "delete",
        };
        println!(
            "  [{}] {} {}",
            step.constraint,
            action,
            step.atom.display(db.schema())
        );
    }
    Ok(())
}
