//! Durability walkthrough: create a persistent database, churn it,
//! "crash" (drop without ceremony), and reopen — the recovered handle is
//! byte-identical, reports what recovery found, and resumes with warm
//! caches because the WAL is replayed through the incremental grounding
//! engine rather than rebuilt from scratch.
//!
//! Run with `cargo run --example persistence`.

use cqa::storage::{FsyncPolicy, StoreOptions};
use cqa::Database;

fn main() -> Result<(), cqa::Error> {
    let dir = std::env::temp_dir().join(format!("cqa-example-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // A store is a directory: `snapshot` (the full instance + constraints
    // at some write horizon) and `wal` (checksummed deltas since). Seed
    // it from a SQL script — the usual inconsistent register.
    let catalog = cqa::sql::parse_script(
        "
        CREATE TABLE r (x TEXT PRIMARY KEY, y TEXT);
        CREATE TABLE s (u TEXT, v TEXT, FOREIGN KEY (v) REFERENCES r(x));
        INSERT INTO r VALUES ('a', 'b'), ('a', 'c');   -- key conflict
        INSERT INTO s VALUES (NULL, 'a');
        ",
    )?;
    let mut db = Database::persistent_with(
        &dir,
        catalog.instance,
        catalog.constraints,
        StoreOptions {
            // Every acknowledged write is fsynced before `insert`
            // returns; `EveryN(n)` and `Never` trade that for latency.
            fsync: FsyncPolicy::Always,
            ..StoreOptions::default()
        },
    )?;

    // Ordinary mutation: each effective call appends one WAL frame
    // *before* the in-memory change. Batches append one frame total.
    for k in 0..10 {
        db.insert("r", [cqa::s(&format!("row{k}")), cqa::s("clean")])?;
    }
    db.insert_many("s", (0..5).map(|k| [cqa::s(&format!("u{k}")), cqa::s("a")]))?;
    db.delete("r", [cqa::s("row0"), cqa::s("clean")])?;

    let repairs_before = db.repairs()?.len();
    let answers_before = db.consistent_answers("q(v) :- s(u, v).")?;
    println!(
        "before crash: {repairs_before} repairs, {} consistent answers",
        answers_before.len()
    );

    // "Crash": no close(), no flush — drop the handle mid-flight. Every
    // acknowledged write is already on disk.
    drop(db);

    // Reopen. Recovery loads the snapshot, replays surviving WAL frames
    // (truncating any torn tail), and warms the grounding caches along
    // the way: the snapshot state is grounded once, then the whole WAL
    // drift is applied as ONE incremental evolve — cost scales with the
    // net drift, not WAL length × grounding cost.
    let mut db = Database::open(&dir)?;
    let report = db.recovery_report().expect("opened stores report");
    println!(
        "recovered: snapshot {} atoms @ seq {}, {} frames replayed, {} torn bytes dropped, horizon seq {}",
        report.snapshot_atoms,
        report.snapshot_last_seq,
        report.frames_applied,
        report.bytes_truncated,
        report.last_seq,
    );

    assert_eq!(db.repairs()?.len(), repairs_before);
    assert_eq!(db.consistent_answers("q(v) :- s(u, v).")?, answers_before);
    println!("after recovery: identical repairs and consistent answers");

    // The reopened handle starts *warm*: the first program-route query
    // hits the recovered grounding, and further churn keeps riding the
    // incremental reground path (stats prove it).
    let _ = db.repairs_via_program()?;
    db.insert("r", [cqa::s("post-crash"), cqa::s("clean")])?;
    let _ = db.repairs_via_program()?;
    let stats = db.caches().grounding.stats();
    println!(
        "grounding cache after reopen + churn: {} hits, {} regrounds, {} rebuilds",
        stats.hits, stats.regrounds, stats.rebuilds,
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
