//! Quickstart: load an inconsistent database, inspect violations,
//! enumerate repairs, and ask for consistent answers.
//!
//! Run with `cargo run --example quickstart`.

use cqa::Database;

fn main() -> Result<(), cqa::Error> {
    // The paper's running Example 19: a key violation in `r` and a
    // dangling foreign key in `s`.
    let db = Database::from_script(
        "CREATE TABLE r (x TEXT PRIMARY KEY, y TEXT);
         CREATE TABLE s (u TEXT, v TEXT, FOREIGN KEY (v) REFERENCES r(x));
         INSERT INTO r VALUES ('a', 'b'), ('a', 'c');
         INSERT INTO s VALUES ('e', 'f'), (NULL, 'a');",
    )?;

    println!("== the database ==");
    println!("{}", db.tables());

    println!("== consistency ==");
    println!("consistent: {}", db.is_consistent());
    for v in db.violations() {
        println!("  violation: {v}");
    }

    println!("\n== repairs (Definition 7) ==");
    for (i, repair) in db.repairs()?.iter().enumerate() {
        println!(
            "  repair {}: {}",
            i + 1,
            cqa::relational::display::instance_set(repair)
        );
    }

    println!("\n== consistent query answering (Definition 8) ==");
    // Which values are referenced by s in *every* repair?
    let q = "referenced(v) :- s(u, v).";
    println!("  query: {q}");
    for t in db.consistent_answers(q)? {
        println!("  consistent answer: {t}");
    }
    // Compare with the (unreliable) answers on the inconsistent database:
    for t in db.answers(q)? {
        println!("  plain answer:      {t}");
    }

    // Boolean queries work too:
    println!(
        "  is 'a' certainly referenced? {}",
        db.consistent_answer_boolean("b() :- s(u, 'a').")?
    );
    Ok(())
}
