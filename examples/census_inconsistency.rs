//! A data-cleaning scenario: a census-style register with keys, foreign
//! keys, NOT NULL and check constraints, queried consistently while the
//! inconsistencies remain unresolved.
//!
//! This is the workload class the paper's introduction motivates:
//! virtual data integration where sources cannot be fixed, so
//! inconsistencies must be handled at query time.
//!
//! Run with `cargo run --example census_inconsistency`.

use cqa::core::nonconflict;
use cqa::prelude::{RepairConfig, RepairSemantics};
use cqa::Database;

fn main() -> Result<(), cqa::Error> {
    let mut db = Database::from_script(
        "
        CREATE TABLE district (code TEXT PRIMARY KEY, region TEXT NOT NULL);
        CREATE TABLE household (
            id INT PRIMARY KEY,
            district TEXT,
            members INT,
            CHECK (members > 0),
            FOREIGN KEY (district) REFERENCES district(code)
        );

        INSERT INTO district VALUES ('d1', 'north'), ('d1', 'south');  -- key conflict
        INSERT INTO district VALUES ('d2', NULL);                      -- NOT NULL breach
        INSERT INTO household VALUES (1, 'd1', 4);
        INSERT INTO household VALUES (2, 'd9', 2);                     -- dangling district
        INSERT INTO household VALUES (3, NULL, 3);                     -- unknown district: fine
        INSERT INTO household VALUES (4, 'd2', NULL);                  -- unknown size: fine
        ",
    )?;

    println!("{}", db.tables());
    println!("consistent: {}", db.is_consistent());
    for v in db.violations() {
        println!("  {v}");
    }

    // `region TEXT NOT NULL` guards an attribute that the household→district
    // foreign key quantifies existentially — the *conflicting* interaction
    // of the paper's Example 20. The null-based semantics would need to
    // invent concrete region values (infinitely many repairs), so the
    // default engine refuses; the deletion-preferring Rep_d semantics is
    // the paper's prescribed fallback.
    for c in nonconflict::conflicts(db.constraints()) {
        println!(
            "\nconflicting interaction: `{}` vs `{}` → using Rep_d",
            c.tgd_name, c.nnc_name
        );
    }
    db = db.with_config(RepairConfig {
        semantics: RepairSemantics::DeletionPreferring,
        ..RepairConfig::default()
    });

    let repairs = db.repairs()?;
    println!("\n{} repairs; e.g.:", repairs.len());
    println!("  {}", cqa::relational::display::instance_set(&repairs[0]));

    println!("\n== consistent answers survive the mess ==");
    for (label, q) in [
        (
            "households with a certain district link",
            "q(h) :- household(h, d, m), district(d, r).",
        ),
        ("districts certainly present", "q(d) :- district(d, r)."),
        (
            "household sizes known for sure",
            "q(h, m) :- household(h, d, m), m > 0.",
        ),
    ] {
        println!("{label}:");
        println!("  query: {q}");
        for t in db.consistent_answers(q)? {
            println!("    {t}");
        }
    }

    // Tighten the rules mid-flight: region values must be 'north'.
    db.add_constraint("region_check", "district(c, r) -> r = 'north'")?;
    println!(
        "\nafter adding region_check, {} repairs",
        db.repairs()?.len()
    );
    Ok(())
}
