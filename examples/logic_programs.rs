//! The logic-program pipeline of the paper's Section 5: build the repair
//! program Π(D, IC) (Definition 9, reproduced from Example 21), ground
//! it, enumerate its stable models (Example 23), extract the repairs
//! (Definition 10), and check head-cycle-freeness (Section 6).
//!
//! Run with `cargo run --example logic_programs`.

use cqa::asp;
use cqa::constraints::{builders, graph, IcSet};
use cqa::prelude::*;
use cqa::relational::display::instance_set;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Example 19's database and constraints.
    let schema = Schema::builder()
        .relation("r", ["x", "y"])
        .relation("s", ["u", "v"])
        .finish()?
        .into_shared();
    let mut d = Instance::empty(schema.clone());
    d.insert_named("r", [s("a"), s("b")])?;
    d.insert_named("r", [s("a"), s("c")])?;
    d.insert_named("s", [s("e"), s("f")])?;
    d.insert_named("s", [null(), s("a")])?;
    let mut ics = IcSet::default();
    ics.push(builders::functional_dependency(&schema, "r", &[0], 1)?);
    ics.push(builders::foreign_key(&schema, "s", &[1], "r", &[0])?);
    ics.push(builders::not_null(&schema, "r", 0)?);

    println!("== RIC-acyclicity (Definition 1) ==");
    println!("RIC-acyclic: {}", graph::is_ric_acyclic(&ics));
    println!(
        "bilateral predicates (Definition 11): {:?} → Theorem 5 HCF condition: {}",
        graph::bilateral_predicates(&ics).len(),
        graph::theorem5_hcf_condition(&ics)
    );

    println!("\n== Π(D, IC) — the Example 21 program ==");
    let program = cqa_core::repair_program(&d, &ics, ProgramStyle::PaperExact)?;
    print!("{program}");

    println!("\n== grounding and stable models (Example 23) ==");
    let gp = asp::ground(&program);
    println!(
        "{} ground atoms, {} ground rules, head-cycle-free: {}",
        gp.atom_count(),
        gp.rules.len(),
        asp::is_hcf(&gp)
    );
    let models = asp::stable_models(&gp);
    println!("{} stable models:", models.len());
    for (i, m) in models.iter().enumerate() {
        let instance = cqa_core::program::extract_instance(&schema, &program, &gp, m)?;
        println!("  M{} → D_M = {}", i + 1, instance_set(&instance));
    }

    println!("\n== Theorem 4: they are exactly the repairs ==");
    for r in repairs(&d, &ics)? {
        println!("  repair: {}", instance_set(&r));
    }

    println!("\n== Section 6: shifting the HCF program to a normal one ==");
    let shifted = asp::shift(&gp)?;
    println!(
        "shifted program is normal: {}; same stable models: {}",
        shifted.is_normal(),
        asp::stable_models(&shifted) == models
    );
    Ok(())
}

use cqa::core as cqa_core;
